"""A small in-memory graph database: the dataset ``D = {G_1, ..., G_n}``.

The subgraph/supergraph querying problems of Definitions 3 and 4 are posed
against a *collection* of graphs.  :class:`GraphDatabase` is that collection:
it assigns stable ids, provides lookups, and knows the size of the label
universe (the ``L`` of the cost model in §5.1).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from .graph import GraphError, LabeledGraph

__all__ = ["GraphDatabase"]


class GraphDatabase:
    """An ordered, id-addressable collection of dataset graphs.

    Besides the raw graphs the database caches their *compiled* verification
    representations (:mod:`repro.isomorphism.compiled`): a
    :meth:`compiled_target` per graph (bitset adjacency for the common
    "dataset graph as target" role) and a :meth:`compiled_plan` per graph
    (matching plan for the supergraph-query role, where dataset graphs play
    the pattern).  Both are built lazily on first use and then shared by
    every query that verifies against the graph; stored graphs are treated
    as immutable once added.
    """

    def __init__(self, name: str | None = None) -> None:
        self.name = name
        self._graphs: dict[Hashable, LabeledGraph] = {}
        self._labels: set = set()
        self._compiled_targets: dict[Hashable, object] = {}
        self._compiled_plans: dict[Hashable, object] = {}
        self._signatures: object | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_graphs(
        cls, graphs: Iterable[LabeledGraph], name: str | None = None
    ) -> "GraphDatabase":
        """Build a database from an iterable of graphs.

        Graphs named ``"<name>"`` keep their name as id; unnamed graphs get a
        positional ``"g<i>"`` id.
        """
        database = cls(name=name)
        for index, graph in enumerate(graphs):
            graph_id = graph.name if graph.name is not None else f"g{index}"
            database.add(graph_id, graph)
        return database

    def add(self, graph_id: Hashable, graph: LabeledGraph) -> None:
        """Add ``graph`` under ``graph_id`` (ids must be unique)."""
        if graph_id in self._graphs:
            raise GraphError(f"duplicate graph id {graph_id!r}")
        self._graphs[graph_id] = graph
        self._labels.update(graph.labels())
        # The stacked signature arrays are aligned over the full id set, so
        # any insert invalidates them (per-graph compiled caches stay valid).
        self._signatures = None

    # ------------------------------------------------------------------
    # Compiled verification representations
    # ------------------------------------------------------------------
    def compiled_target(self, graph_id: Hashable):
        """Compiled (bitset) target representation of one stored graph.

        Built on first request and cached; the compilation cost is amortised
        over every verification the graph ever participates in.  Under the
        thread backend concurrent first requests may compile twice — both
        results are identical and the last write wins, so the race is benign.
        """
        target = self._compiled_targets.get(graph_id)
        if target is None:
            from ..isomorphism.compiled import compile_target

            target = compile_target(self.get(graph_id))
            self._compiled_targets[graph_id] = target
        return target

    def compiled_plan(self, graph_id: Hashable):
        """Compiled matching plan of one stored graph (supergraph queries,
        where the dataset graph plays the pattern role)."""
        plan = self._compiled_plans.get(graph_id)
        if plan is None:
            from ..isomorphism.compiled import compile_query_plan

            plan = compile_query_plan(self.get(graph_id))
            self._compiled_plans[graph_id] = plan
        return plan

    def precompile(self, targets: bool = True, plans: bool = False) -> None:
        """Eagerly compile the chosen representation of every stored graph.

        Called before a verification snapshot is pickled to worker processes
        so the (one-time) compilation happens in the parent instead of once
        per worker.  Subgraph verification consumes ``targets``; supergraph
        verification (dataset graphs as patterns) consumes ``plans``.

        When the native C kernel is loadable the per-target word buffers it
        consumes are built here too: they are derived data (never pickled —
        workers rebuild lazily), so eager construction only moves the same
        one-time cost out of the first verification call.
        """
        from ..isomorphism._ckernel_loader import native_kernel_available

        build_native = targets and native_kernel_available()
        for graph_id in self._graphs:
            if targets:
                target = self.compiled_target(graph_id)
                if build_native:
                    target.native()
            if plans:
                self.compiled_plan(graph_id)
        if targets:
            # the batched pre-reject's stacked arrays are derived data too
            # (None when numpy is unavailable)
            self.dataset_signatures()

    def dataset_signatures(self):
        """Stacked per-graph signature arrays for the batched pre-reject.

        Returns the database-wide
        :class:`~repro.isomorphism.compiled.DatasetSignatures` (built lazily
        on first request, invalidated when a graph is added) or ``None``
        when the numpy kernel backend is unavailable on this host.
        """
        from ..isomorphism.compiled import DatasetSignatures, numpy_kernel_available

        if not numpy_kernel_available():
            return None
        if self._signatures is None:
            self._signatures = DatasetSignatures(self._graphs)
        return self._signatures

    # ------------------------------------------------------------------
    def get(self, graph_id: Hashable) -> LabeledGraph:
        """Return the graph stored under ``graph_id``."""
        try:
            return self._graphs[graph_id]
        except KeyError:
            raise GraphError(f"unknown graph id {graph_id!r}") from None

    def ids(self) -> list[Hashable]:
        """All graph ids, in insertion order."""
        return list(self._graphs)

    def items(self) -> Iterator[tuple[Hashable, LabeledGraph]]:
        """Iterate over ``(graph_id, graph)`` pairs in insertion order."""
        return iter(self._graphs.items())

    def graphs(self) -> Iterator[LabeledGraph]:
        """Iterate over the stored graphs in insertion order."""
        return iter(self._graphs.values())

    @property
    def num_labels(self) -> int:
        """Size of the vertex-label universe across all stored graphs."""
        return len(self._labels)

    def labels(self) -> set:
        """The vertex-label universe."""
        return set(self._labels)

    def __len__(self) -> int:
        return len(self._graphs)

    def __contains__(self, graph_id: Hashable) -> bool:
        return graph_id in self._graphs

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._graphs)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"<GraphDatabase{label} graphs={len(self._graphs)} labels={self.num_labels}>"
