"""Graph traversal primitives: BFS, DFS, connected components, distances.

These are the building blocks for

* the query workload generator (§7.1 of the paper extracts queries by a BFS
  traversal of a seed vertex's neighbourhood),
* Grapes' restriction of verification to candidate connected components,
* assorted sanity checks in the dataset generators (all generated dataset
  graphs are connected, as is standard for the AIDS/PDBS/PPI data).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Iterator

from .graph import GraphError, LabeledGraph

__all__ = [
    "bfs_order",
    "bfs_edges",
    "bfs_distances",
    "dfs_order",
    "connected_components",
    "is_connected",
    "largest_connected_component",
    "shortest_path_length",
    "vertices_within_distance",
]


def bfs_order(graph: LabeledGraph, source: Hashable) -> Iterator[Hashable]:
    """Yield vertices in breadth-first order starting from ``source``."""
    if not graph.has_vertex(source):
        raise GraphError(f"unknown vertex {source!r}")
    seen = {source}
    queue: deque = deque([source])
    while queue:
        vertex = queue.popleft()
        yield vertex
        for neighbor in graph.neighbors(vertex):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)


def bfs_edges(graph: LabeledGraph, source: Hashable) -> Iterator[tuple[Hashable, Hashable]]:
    """Yield the tree edges of a BFS from ``source`` in visit order."""
    if not graph.has_vertex(source):
        raise GraphError(f"unknown vertex {source!r}")
    seen = {source}
    queue: deque = deque([source])
    while queue:
        vertex = queue.popleft()
        for neighbor in graph.neighbors(vertex):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
                yield (vertex, neighbor)


def bfs_distances(graph: LabeledGraph, source: Hashable) -> dict[Hashable, int]:
    """Return the dictionary of hop distances from ``source`` to every
    reachable vertex (including ``source`` itself at distance 0)."""
    if not graph.has_vertex(source):
        raise GraphError(f"unknown vertex {source!r}")
    distances = {source: 0}
    queue: deque = deque([source])
    while queue:
        vertex = queue.popleft()
        for neighbor in graph.neighbors(vertex):
            if neighbor not in distances:
                distances[neighbor] = distances[vertex] + 1
                queue.append(neighbor)
    return distances


def dfs_order(graph: LabeledGraph, source: Hashable) -> Iterator[Hashable]:
    """Yield vertices in (iterative) depth-first order starting at ``source``."""
    if not graph.has_vertex(source):
        raise GraphError(f"unknown vertex {source!r}")
    seen: set = set()
    stack = [source]
    while stack:
        vertex = stack.pop()
        if vertex in seen:
            continue
        seen.add(vertex)
        yield vertex
        stack.extend(n for n in graph.neighbors(vertex) if n not in seen)


def connected_components(graph: LabeledGraph) -> list[set]:
    """Return the list of connected components, each as a set of vertices.

    Components are returned in decreasing order of size (ties broken by the
    representation of their smallest vertex, for determinism).
    """
    remaining = set(graph.vertices())
    components: list[set] = []
    while remaining:
        source = next(iter(remaining))
        component = set(bfs_order(graph, source))
        components.append(component)
        remaining -= component
    components.sort(key=lambda comp: (-len(comp), repr(sorted(map(repr, comp))[:1])))
    return components


def is_connected(graph: LabeledGraph) -> bool:
    """True if the graph is connected (the empty graph counts as connected)."""
    if graph.num_vertices == 0:
        return True
    source = next(graph.vertices())
    return len(set(bfs_order(graph, source))) == graph.num_vertices


def largest_connected_component(graph: LabeledGraph) -> LabeledGraph:
    """Return the induced subgraph of the largest connected component."""
    if graph.num_vertices == 0:
        return graph.copy()
    components = connected_components(graph)
    return graph.subgraph(components[0], name=graph.name)


def shortest_path_length(graph: LabeledGraph, source: Hashable, target: Hashable) -> int | None:
    """Return the hop distance between ``source`` and ``target``.

    Returns ``None`` if the two vertices are disconnected.
    """
    if not graph.has_vertex(target):
        raise GraphError(f"unknown vertex {target!r}")
    distances = bfs_distances(graph, source)
    return distances.get(target)


def vertices_within_distance(
    graph: LabeledGraph, sources: Iterable[Hashable], radius: int
) -> set:
    """Return all vertices within ``radius`` hops of any vertex in ``sources``.

    Used by Grapes-style verification to restrict the subgraph isomorphism
    test to the neighbourhood of vertices that matched query features.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    frontier = set(sources)
    for source in frontier:
        if not graph.has_vertex(source):
            raise GraphError(f"unknown vertex {source!r}")
    reached = set(frontier)
    for _ in range(radius):
        next_frontier: set = set()
        for vertex in frontier:
            for neighbor in graph.neighbors(vertex):
                if neighbor not in reached:
                    reached.add(neighbor)
                    next_frontier.add(neighbor)
        if not next_frontier:
            break
        frontier = next_frontier
    return reached
