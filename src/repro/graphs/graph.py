"""Core labeled-graph data structure used throughout the iGQ reproduction.

The paper (Definition 1) considers undirected graphs whose vertices carry a
label drawn from a finite label universe.  Edge labels are supported as an
optional extension (the paper notes that all results generalise to them) but
are not required by any of the reproduced experiments.

The implementation favours the access patterns the rest of the library needs:

* constant-time adjacency lookups (``dict`` of ``dict``),
* a label -> vertices inverted index (used by the isomorphism matchers and by
  the feature extractors to prune their search),
* cheap structural statistics (degree sequence, label histogram) which the
  filter-then-verify methods use as zero-cost pre-filters.

Vertices are identified by arbitrary hashable ids; in practice the dataset
generators use consecutive integers.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Any

__all__ = ["GraphError", "LabeledGraph"]


class GraphError(Exception):
    """Raised for structurally invalid graph operations."""


class LabeledGraph:
    """An undirected graph with labeled vertices (and optional edge labels).

    Parameters
    ----------
    name:
        Optional identifier.  Dataset graphs are typically named ``"g<i>"``;
        query graphs ``"q<i>"``.

    Examples
    --------
    >>> g = LabeledGraph(name="triangle")
    >>> for v, label in enumerate("CCO"):
    ...     _ = g.add_vertex(v, label)
    >>> g.add_edge(0, 1)
    >>> g.add_edge(1, 2)
    >>> g.add_edge(2, 0)
    >>> g.num_vertices, g.num_edges
    (3, 3)
    >>> sorted(g.neighbors(1))
    [0, 2]
    """

    __slots__ = ("name", "_adjacency", "_labels", "_label_index", "_num_edges", "_label_counts")

    def __init__(self, name: str | None = None) -> None:
        self.name = name
        self._adjacency: dict[Hashable, dict[Hashable, Any]] = {}
        self._labels: dict[Hashable, Hashable] = {}
        self._label_index: dict[Hashable, set[Hashable]] = {}
        self._label_counts: Counter = Counter()
        self._num_edges = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        labels: Mapping[Hashable, Hashable],
        edges: Iterable[tuple[Hashable, Hashable]],
        name: str | None = None,
    ) -> "LabeledGraph":
        """Build a graph from a vertex-label mapping and an edge list."""
        graph = cls(name=name)
        for vertex, label in labels.items():
            graph.add_vertex(vertex, label)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    def add_vertex(self, vertex: Hashable, label: Hashable) -> Hashable:
        """Add ``vertex`` with ``label``.

        Re-adding an existing vertex with the same label is a no-op; re-adding
        it with a different label raises :class:`GraphError`.
        """
        if vertex in self._labels:
            if self._labels[vertex] != label:
                raise GraphError(
                    f"vertex {vertex!r} already exists with label "
                    f"{self._labels[vertex]!r}, cannot relabel to {label!r}"
                )
            return vertex
        self._labels[vertex] = label
        self._adjacency[vertex] = {}
        self._label_index.setdefault(label, set()).add(vertex)
        self._label_counts[label] += 1
        return vertex

    def add_edge(self, u: Hashable, v: Hashable, label: Hashable = None) -> None:
        """Add an undirected edge between existing vertices ``u`` and ``v``.

        Self loops are rejected (none of the paper's datasets contain them and
        the feature extractors assume simple graphs).  Adding an existing edge
        is a no-op unless the edge label differs.
        """
        if u == v:
            raise GraphError(f"self-loop on vertex {u!r} is not allowed")
        if u not in self._labels:
            raise GraphError(f"unknown vertex {u!r}")
        if v not in self._labels:
            raise GraphError(f"unknown vertex {v!r}")
        if v in self._adjacency[u]:
            if self._adjacency[u][v] != label:
                raise GraphError(f"edge ({u!r}, {v!r}) exists with a different label")
            return
        self._adjacency[u][v] = label
        self._adjacency[v][u] = label
        self._num_edges += 1

    def remove_edge(self, u: Hashable, v: Hashable) -> None:
        """Remove the edge between ``u`` and ``v`` (it must exist)."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) does not exist")
        del self._adjacency[u][v]
        del self._adjacency[v][u]
        self._num_edges -= 1

    def remove_vertex(self, vertex: Hashable) -> None:
        """Remove ``vertex`` and all its incident edges."""
        if vertex not in self._labels:
            raise GraphError(f"unknown vertex {vertex!r}")
        for neighbor in list(self._adjacency[vertex]):
            self.remove_edge(vertex, neighbor)
        label = self._labels.pop(vertex)
        self._label_index[label].discard(vertex)
        self._label_counts[label] -= 1
        if not self._label_counts[label]:
            del self._label_counts[label]
        if not self._label_index[label]:
            del self._label_index[label]
        del self._adjacency[vertex]

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of (undirected) edges."""
        return self._num_edges

    def vertices(self) -> Iterator[Hashable]:
        """Iterate over vertex ids."""
        return iter(self._labels)

    def edges(self) -> Iterator[tuple[Hashable, Hashable]]:
        """Iterate over edges, each reported once as an ``(u, v)`` pair."""
        seen: set[frozenset] = set()
        for u, nbrs in self._adjacency.items():
            for v in nbrs:
                key = frozenset((u, v))
                if key in seen:
                    continue
                seen.add(key)
                yield (u, v)

    def label(self, vertex: Hashable) -> Hashable:
        """Return the label of ``vertex``."""
        try:
            return self._labels[vertex]
        except KeyError:
            raise GraphError(f"unknown vertex {vertex!r}") from None

    def edge_label(self, u: Hashable, v: Hashable) -> Hashable:
        """Return the label of edge ``(u, v)`` (``None`` if unlabeled)."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) does not exist")
        return self._adjacency[u][v]

    def has_vertex(self, vertex: Hashable) -> bool:
        """True if ``vertex`` exists."""
        return vertex in self._labels

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        """True if the edge ``(u, v)`` exists."""
        return u in self._adjacency and v in self._adjacency[u]

    def neighbors(self, vertex: Hashable) -> Iterator[Hashable]:
        """Iterate over the neighbours of ``vertex``."""
        try:
            return iter(self._adjacency[vertex])
        except KeyError:
            raise GraphError(f"unknown vertex {vertex!r}") from None

    def degree(self, vertex: Hashable) -> int:
        """Degree of ``vertex``."""
        try:
            return len(self._adjacency[vertex])
        except KeyError:
            raise GraphError(f"unknown vertex {vertex!r}") from None

    def vertices_with_label(self, label: Hashable) -> frozenset:
        """Return the (possibly empty) set of vertices carrying ``label``."""
        return frozenset(self._label_index.get(label, ()))

    def labels(self) -> set:
        """Return the set of distinct vertex labels present in the graph."""
        return set(self._label_index)

    # ------------------------------------------------------------------
    # Statistics used by the filtering / cost layers
    # ------------------------------------------------------------------
    def label_histogram(self) -> Counter:
        """Multiset of vertex labels (label -> count)."""
        return Counter(self._label_counts)

    def degree_sequence(self) -> list[int]:
        """Sorted (descending) degree sequence."""
        return sorted((len(nbrs) for nbrs in self._adjacency.values()), reverse=True)

    def average_degree(self) -> float:
        """Average vertex degree (0.0 for the empty graph)."""
        if not self._labels:
            return 0.0
        return 2.0 * self._num_edges / len(self._labels)

    def density(self) -> float:
        """Edge density relative to the complete graph on the same vertices."""
        n = len(self._labels)
        if n < 2:
            return 0.0
        return 2.0 * self._num_edges / (n * (n - 1))

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "LabeledGraph":
        """Return a deep structural copy of the graph."""
        clone = LabeledGraph(name=self.name if name is None else name)
        for vertex, label in self._labels.items():
            clone.add_vertex(vertex, label)
        for u, v in self.edges():
            clone.add_edge(u, v, self._adjacency[u][v])
        return clone

    def subgraph(self, vertices: Iterable[Hashable], name: str | None = None) -> "LabeledGraph":
        """Return the subgraph induced by ``vertices``."""
        keep = set(vertices)
        unknown = keep - set(self._labels)
        if unknown:
            raise GraphError(f"unknown vertices {sorted(map(repr, unknown))}")
        sub = LabeledGraph(name=name)
        for vertex in keep:
            sub.add_vertex(vertex, self._labels[vertex])
        for vertex in keep:
            for neighbor, edge_label in self._adjacency[vertex].items():
                if neighbor in keep and not sub.has_edge(vertex, neighbor):
                    sub.add_edge(vertex, neighbor, edge_label)
        return sub

    def relabeled(self, name: str | None = None) -> "LabeledGraph":
        """Return a copy whose vertices are renumbered ``0..n-1``.

        The renumbering follows the iteration order of the current vertices,
        which keeps the operation deterministic.
        """
        mapping = {vertex: index for index, vertex in enumerate(self._labels)}
        clone = LabeledGraph(name=self.name if name is None else name)
        for vertex, label in self._labels.items():
            clone.add_vertex(mapping[vertex], label)
        for u, v in self.edges():
            clone.add_edge(mapping[u], mapping[v], self._adjacency[u][v])
        return clone

    # ------------------------------------------------------------------
    # Structural equality / hashing helpers
    # ------------------------------------------------------------------
    def same_size(self, other: "LabeledGraph") -> bool:
        """True if both graphs have the same number of vertices and edges.

        Used by the iGQ engine to detect the *exact repeat* optimal case of
        §4.3: a containment in either direction plus equal sizes implies the
        graphs are isomorphic.
        """
        return (
            self.num_vertices == other.num_vertices
            and self.num_edges == other.num_edges
        )

    def invariant_signature(self) -> tuple:
        """A cheap isomorphism-invariant fingerprint.

        Two isomorphic graphs always produce the same signature; distinct
        signatures prove non-isomorphism.  The signature combines vertex and
        edge counts, the label histogram and the multiset of
        ``(label, degree)`` pairs.
        """
        label_hist = tuple(sorted(self.label_histogram().items(), key=repr))
        label_degrees = tuple(
            sorted(
                ((self._labels[v], len(nbrs)) for v, nbrs in self._adjacency.items()),
                key=repr,
            )
        )
        return (self.num_vertices, self.num_edges, label_hist, label_degrees)

    def __eq__(self, other: object) -> bool:
        """Structural equality on the *same* vertex ids (not isomorphism)."""
        if not isinstance(other, LabeledGraph):
            return NotImplemented
        if self._labels != other._labels:
            return False
        if self._num_edges != other._num_edges:
            return False
        for u, nbrs in self._adjacency.items():
            if other._adjacency.get(u) != nbrs:
                return False
        return True

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, vertex: Hashable) -> bool:
        return vertex in self._labels

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return (
            f"<LabeledGraph{label} |V|={self.num_vertices} |E|={self.num_edges}>"
        )
