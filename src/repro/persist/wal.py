"""Append-only write-ahead log segments for the durable query cache.

The on-disk form of the sharded engine's :class:`~repro.core.shard.DeltaLog`:
each segment file starts with an 8-byte magic and carries a sequence of
length-prefixed, CRC32-checksummed pickle records.  A record is a
``(kind, payload)`` tuple — ``"delta"`` (one :class:`~repro.core.shard.CacheDelta`
including its compiled :class:`~repro.core.shard.ShardEntry` payload),
``"meta"`` (immutable per-entry extras: answer set, tags, insertion
counter) or ``"state"`` (the engine's small mutable state, written once
per window flush as the batch commit marker).

Segments are named by the log version they start *after*
(``wal-<version>.seg``) and rotate when a snapshot is written, so recovery
is always "newest valid snapshot + the segments at or above its version".
A torn tail — a record cut short by a crash mid-append, or one whose
checksum no longer matches — ends the replay at the last intact record;
:func:`read_segment` with ``repair=True`` truncates the file back to that
prefix in place, restoring the append invariant for the next writer.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "MAGIC",
    "SegmentScan",
    "WalWriter",
    "encode_record",
    "list_segments",
    "prune_segments",
    "read_segment",
    "segment_name",
    "segment_start_version",
]

#: segment file magic; the trailing digits version the framing format
MAGIC = b"IGQWAL01"

#: ``<length, crc32>`` little-endian record header
_HEADER = struct.Struct("<II")


def segment_name(version: int) -> str:
    """File name of the segment holding records after log ``version``."""
    return f"wal-{version:016d}.seg"


def segment_start_version(name: str) -> int | None:
    """Inverse of :func:`segment_name` (``None`` for foreign files)."""
    if not (name.startswith("wal-") and name.endswith(".seg")):
        return None
    digits = name[4:-4]
    if not digits.isdigit():
        return None
    return int(digits)


def list_segments(path: Path) -> list[tuple[int, Path]]:
    """The ``(start_version, path)`` segments under ``path``, oldest first."""
    segments = []
    for child in Path(path).iterdir():
        version = segment_start_version(child.name)
        if version is not None:
            segments.append((version, child))
    segments.sort()
    return segments


def prune_segments(path: Path, keep_version: int) -> int:
    """Delete segments below ``keep_version`` (superseded by a snapshot)."""
    removed = 0
    for version, segment in list_segments(path):
        if version < keep_version:
            segment.unlink(missing_ok=True)
            removed += 1
    return removed


def encode_record(obj) -> bytes:
    """Frame one record: length + CRC32 header, pickled payload."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


class WalWriter:
    """Appends framed records to one segment file.

    ``fsync_mode`` mirrors ``PersistConfig.fsync``: the writer itself only
    ever fsyncs when :meth:`sync` is called (or ``sync=True`` is passed to
    :meth:`append`) — the persister decides the cadence, so ``"never"``
    engines simply never call it.
    """

    def __init__(self, path: Path, fsync_mode: str = "flush") -> None:
        self.path = Path(path)
        self.fsync_mode = fsync_mode
        self._file = open(self.path, "ab")
        if self._file.tell() == 0:
            self._file.write(MAGIC)

    def append(self, obj, sync: bool = False) -> int:
        """Append one record; returns its framed size in bytes."""
        frame = encode_record(obj)
        self._file.write(frame)
        if sync:
            self.sync()
        return len(frame)

    def flush(self) -> None:
        """Push buffered bytes to the OS (no durability guarantee)."""
        self._file.flush()

    def sync(self) -> None:
        """Flush and fsync: everything appended so far survives power loss."""
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        """Flush and close the segment (idempotent)."""
        if self._file is not None:
            self._file.flush()
            self._file.close()
            self._file = None

    @property
    def closed(self) -> bool:
        return self._file is None

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"<WalWriter {state} {self.path.name} fsync={self.fsync_mode!r}>"


@dataclass
class SegmentScan:
    """Result of reading one segment: the intact prefix and its extent."""

    #: decoded ``(kind, payload)`` records of the intact prefix
    records: list = field(default_factory=list)
    #: the whole file decoded — nothing was torn or corrupt
    clean: bool = True
    #: byte length of the intact prefix (magic included)
    valid_bytes: int = 0
    #: byte length of the file as read
    total_bytes: int = 0
    #: why the scan stopped early (``None`` when clean)
    reason: str | None = None


def read_segment(path: Path, repair: bool = False) -> SegmentScan:
    """Decode a segment's intact prefix; optionally truncate a torn tail.

    Every failure mode a crash can leave behind — a short record header, a
    payload cut mid-write, a checksum mismatch from a partially overwritten
    block, an unpicklable payload — ends the scan at the last record that
    round-trips, so no partial record is ever surfaced to recovery.  With
    ``repair=True`` the file is truncated (and fsynced) back to that
    prefix, which is exactly the state an interrupted append never ran.
    """
    path = Path(path)
    data = path.read_bytes()
    total = len(data)
    scan = SegmentScan(total_bytes=total)
    if not data.startswith(MAGIC):
        scan.clean = total == 0
        scan.reason = None if scan.clean else "bad segment magic"
        scan.valid_bytes = 0
    else:
        offset = len(MAGIC)
        while offset < total:
            if offset + _HEADER.size > total:
                scan.reason = "torn record header"
                break
            length, crc = _HEADER.unpack_from(data, offset)
            end = offset + _HEADER.size + length
            if end > total:
                scan.reason = "torn record payload"
                break
            payload = data[offset + _HEADER.size : end]
            if zlib.crc32(payload) != crc:
                scan.reason = "record checksum mismatch"
                break
            try:
                record = pickle.loads(payload)
            except Exception:  # noqa: BLE001 - any undecodable record is torn
                scan.reason = "undecodable record payload"
                break
            scan.records.append(record)
            offset = end
        scan.valid_bytes = offset
        scan.clean = scan.reason is None
    if repair and not scan.clean:
        with open(path, "r+b") as file:
            file.truncate(scan.valid_bytes)
            file.flush()
            os.fsync(file.fileno())
    return scan
