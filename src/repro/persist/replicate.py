"""Remote followers: read-only replicas streaming a leader's delta log.

A follower is a :class:`~repro.core.shard.QueryIndexShard` in another
process (or machine) fed over the PR 9 wire protocol: it polls the
leader's ``log_since`` endpoint, applies the returned tail, and serves
read-only containment probes against its local indexes.  A follower that
fell below the leader's compaction floor receives a typed
``log_truncated`` error and runs the same reset-and-replay fallback the
in-process shards use (:meth:`~repro.core.shard.QueryIndexShard.catch_up`):
drop everything, refetch from version 0 — the compacted net state.

Wire records are *normalised to a single shard*: the follower mirrors the
whole cache, so home-shard assignments collapse to shard 0, replicate
records broadcast unrestricted, and ``move`` records (a pure re-homing
between leader partitions) are membership-neutral and skipped outright —
legal because shards only require strictly increasing record versions,
not consecutive ones.

Compiled payloads never cross the wire; the follower extracts features
locally and its indexes compile on insertion.  Any feature extractor
yields the same *verified* hit sets (features only gate candidates, the
verifier decides), so follower probe results are byte-identical to the
leader's — which :func:`leader_probe_ids` exists to check.
"""

from __future__ import annotations

from ..core.config import ConfigError, EngineConfig
from ..core.shard import (
    BROADCAST,
    DELTA_EVICT,
    DELTA_FLUSH,
    DELTA_INSERT,
    DELTA_MOVE,
    DELTA_REPLICATE,
    CacheDelta,
    QueryIndexShard,
    ShardEntry,
)
from ..features.extractor import FeatureExtractor
from ..service import protocol
from ..service.client import connect

__all__ = [
    "CacheFollower",
    "delta_from_wire",
    "delta_to_wire",
    "leader_probe_ids",
]


def delta_to_wire(record: CacheDelta) -> dict:
    """Serialise one delta record to its JSON wire form.

    Compiled payloads and features are deliberately omitted — they are
    process-local representations; the follower rebuilds both from the
    graph.
    """
    data = {
        "version": record.version,
        "epoch": record.epoch,
        "op": record.op,
        "shard": record.shard,
    }
    if record.entry_id is not None:
        data["entry_id"] = record.entry_id
    if record.src_shard is not None:
        data["src_shard"] = record.src_shard
    if record.targets is not None:
        data["targets"] = list(record.targets)
    if record.entry is not None:
        data["graph"] = protocol.graph_to_dict(record.entry.graph)
    return data


def delta_from_wire(data, extractor: FeatureExtractor) -> CacheDelta | None:
    """Rebuild a wire record as a follower-shard delta (``None`` = skip).

    Normalisation for the single follower shard: inserts re-home to shard
    0, targeted broadcasts widen to unrestricted (the lenient single-holder
    case), and ``move`` records are dropped.
    """
    if not isinstance(data, dict):
        raise protocol.ProtocolError(
            f"log record {data!r} is not valid; expected an object",
            code="invalid_record",
            field="record",
        )
    op = data.get("op")
    version = data.get("version")
    epoch = data.get("epoch", 0)
    if not isinstance(version, int) or isinstance(version, bool) or version <= 0:
        raise protocol.ProtocolError(
            f"record.version={version!r} is not valid; expected a positive "
            "integer",
            code="invalid_record",
            field="record.version",
        )
    if op == DELTA_MOVE:
        return None
    entry = None
    if data.get("graph") is not None:
        graph = protocol.graph_from_dict(data["graph"], field="record.graph")
        entry = ShardEntry(
            entry_id=data["entry_id"], graph=graph, features=extractor.extract(graph)
        )
    if op == DELTA_INSERT:
        return CacheDelta(
            version=version, epoch=epoch, op=op, shard=0,
            entry_id=data["entry_id"], entry=entry,
        )
    if op == DELTA_REPLICATE:
        return CacheDelta(
            version=version, epoch=epoch, op=op, shard=BROADCAST,
            entry_id=data["entry_id"], entry=entry,
        )
    if op == DELTA_EVICT:
        shard = BROADCAST if data.get("shard") == BROADCAST else 0
        return CacheDelta(
            version=version, epoch=epoch, op=op, shard=shard,
            entry_id=data["entry_id"],
        )
    if op == DELTA_FLUSH:
        return CacheDelta(version=version, epoch=epoch, op=op, shard=BROADCAST)
    raise protocol.ProtocolError(
        f"log record op={op!r} is not valid; expected one of "
        f"{[DELTA_INSERT, DELTA_EVICT, DELTA_FLUSH, DELTA_REPLICATE, DELTA_MOVE]}",
        code="invalid_record",
        field="record.op",
    )


class CacheFollower:
    """A remote read-only replica of a served engine's query cache.

    Connects to a leader exposed with :func:`repro.service.server.serve`
    and mirrors its delta log into a local single-shard index pair.  The
    leader must have a log to follow: either a sharded engine (its own
    ``delta_log``) or any engine with persistence enabled (the persister's
    mirror log).

    >>> follower = CacheFollower(host, port)        # doctest: +SKIP
    >>> follower.poll()                             # doctest: +SKIP
    >>> sub_ids, super_ids = follower.probe(query)  # doctest: +SKIP
    """

    def __init__(
        self,
        host: str | None = None,
        port: int | None = None,
        *,
        tenant: str = "follower",
        verifier=None,
        extractor: FeatureExtractor | None = None,
        client=None,
    ) -> None:
        if client is None:
            if host is None or port is None:
                raise ConfigError(
                    "CacheFollower needs host and port (or an existing client=)"
                )
            client = connect(host, port, tenant=tenant)
            self._owns_client = True
        else:
            self._owns_client = False
        self.client = client
        self.extractor = extractor if extractor is not None else FeatureExtractor()
        self.shard = QueryIndexShard(0, verifier=verifier)
        #: leader log version this follower has caught up to
        self.version = 0
        #: leader flush epoch at the last poll
        self.epoch = 0
        #: reset-and-replay rounds forced by compaction-floor truncation
        self.resets = 0
        self._closed = False

    @classmethod
    def from_config(cls, config: EngineConfig, **kwargs) -> "CacheFollower":
        """Connect to the leader named by ``config.persist.follow``."""
        follow = config.persist.follow
        if follow is None:
            raise ConfigError(
                "persist.follow is not set; expected a 'host:port' leader "
                "address to follow"
            )
        host, _, port = follow.rpartition(":")
        return cls(host, int(port), **kwargs)

    # ------------------------------------------------------------------
    def poll(self) -> int:
        """Fetch and apply the leader's tail; returns records applied.

        Transparently handles a ``log_truncated`` rejection (the follower
        fell below the leader's compaction floor) by resetting and
        replaying the retained net state from version 0.
        """
        try:
            reply = self.client.log_since(self.version)
        except protocol.ProtocolError as exc:
            if getattr(exc, "code", None) != "log_truncated":
                raise
            self.shard.reset()
            self.version = 0
            self.resets += 1
            reply = self.client.log_since(0)
        applied = 0
        for data in reply.get("records", []):
            record = delta_from_wire(data, self.extractor)
            if record is None:
                continue
            self.shard.apply(record)
            applied += 1
        self.version = reply.get("version", self.shard.applied_version)
        self.epoch = reply.get("epoch", self.shard.epoch)
        return applied

    def probe(self, query, features=None) -> tuple[list[int], list[int]]:
        """Read-only containment probe: ``(Isub hits, Isuper hits)`` ids.

        Both lists are ascending and deduplicated; features are extracted
        locally when not supplied.
        """
        if features is None:
            features = self.extractor.extract(query)
        sub_ids = sorted(
            set(self.shard.find_supergraph_ids(query, features, cover=True))
        )
        super_ids = sorted(
            set(self.shard.find_subgraph_ids(query, features, cover=True))
        )
        return sub_ids, super_ids

    def entry_ids(self) -> list[int]:
        """Every entry id this follower serves (home + replicated)."""
        return sorted(set(self.shard.entry_ids()) | set(self.shard.replica_ids()))

    def close(self) -> None:
        """Release the follower's connection (when it owns one)."""
        if self._closed:
            return
        self._closed = True
        if self._owns_client:
            self.client.close()

    def __enter__(self) -> "CacheFollower":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.shard)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "following"
        return (
            f"<CacheFollower {state} version={self.version} "
            f"entries={len(self)} resets={self.resets}>"
        )


def leader_probe_ids(engine, query, features=None) -> tuple[list[int], list[int]]:
    """The leader-side hit ids a caught-up follower probe must reproduce.

    Probes every partition *and* every replica holder (deduplicated), so
    replicated entries are seen exactly once regardless of cover routing;
    side-effect-free with respect to the engine's replication counters.
    """
    if features is None:
        features = engine.method.extract_query_features(query)
    runtime = getattr(engine, "shard_runtime", None)
    if runtime is not None and getattr(engine, "num_shards", 1) > 1:
        directives = [(True, True, True, True)] * engine.num_shards
        sub_ids, super_ids = runtime.probe(
            query, features, engine.probe_isub, engine.probe_isuper, directives
        )
        return sorted(set(sub_ids)), sorted(set(super_ids))
    sub_ids = (
        sorted(set(e.entry_id for e in engine.isub.find_supergraphs(query, features)))
        if engine.isub is not None
        else []
    )
    super_ids = (
        sorted(set(e.entry_id for e in engine.isuper.find_subgraphs(query, features)))
        if engine.isuper is not None
        else []
    )
    return sub_ids, super_ids
