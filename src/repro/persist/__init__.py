"""Durable cache persistence: WAL, snapshots, warm restart, followers.

The sharded engine's :class:`~repro.core.shard.DeltaLog` is a replication
WAL in all but name; this package gives it a disk-backed form so a
restarted engine warm-starts its learned cache instead of relearning the
workload through a cold miss storm:

* :mod:`repro.persist.wal` — append-only, checksummed, fsync-disciplined
  log segments with torn-tail truncation on recovery;
* :mod:`repro.persist.snapshot` — atomically published compacted
  snapshots (temp + rename), pruned with their superseded segments;
* :mod:`repro.persist.restore` — :class:`~repro.persist.restore.CachePersister`,
  attached by the engine when ``EngineConfig.persist.dir`` is set: one
  durable batch per window flush, snapshot at a configurable record
  budget, recovery to the last committed flush boundary;
* :mod:`repro.persist.replicate` — :class:`~repro.persist.replicate.CacheFollower`,
  a remote read-only replica streaming the leader's delta log over the
  wire protocol (reset-and-replay below the compaction floor);
* :mod:`repro.persist.inspect` — the ``python -m repro.persist.inspect``
  dump tool for operators.

Reconciliation happens entirely on the append path (flush time) — probes
never touch the disk, mirroring the write-time-reconciliation design the
ROADMAP's durability item calls for.
"""

from .replicate import CacheFollower
from .restore import CachePersister, attach_persistence

__all__ = ["CacheFollower", "CachePersister", "attach_persistence"]
