"""Warm restart: the per-engine persister and its recovery procedure.

:class:`CachePersister` is attached by the engine when
``EngineConfig.persist.dir`` is set.  It turns every window flush into one
durable WAL batch — the flush's delta records, a ``meta`` record carrying
the immutable extras of the entries that entered the cache, and a
``state`` record with the engine's small mutable state (the batch's commit
marker) — and periodically folds everything into an atomic snapshot,
rotating the WAL segment at the same version.

Recovery inverts that: load the newest valid snapshot, replay the
segments at or above its version, and *commit* only at ``state`` records.
A crash mid-batch therefore lands on the previous flush boundary — the
engine restarts exactly as if the queries after that flush were never
submitted, which is the strongest prefix-consistency a window-flushed
cache can offer (and what the fault-injection tests assert).

Two engine shapes share the machinery:

* the sharded engine already maintains an in-memory
  :class:`~repro.core.shard.DeltaLog`; the persister serialises its tail;
* the single-shard engine has no log, so the persister keeps a private
  *mirror* log, diffing the cache's entry ids across flushes.  The mirror
  doubles as the replication source for remote followers of single-shard
  leaders (:mod:`repro.persist.replicate`).
"""

from __future__ import annotations

from pathlib import Path

from ..core.config import ConfigError, PersistConfig
from ..core.shard import (
    DELTA_EVICT,
    DELTA_FLUSH,
    DELTA_INSERT,
    DELTA_MOVE,
    DELTA_REPLICATE,
    DeltaLog,
    ShardEntry,
)
from . import snapshot, wal

__all__ = ["CachePersister", "RecoveredState", "attach_persistence", "recover_dir"]

#: bump on any incompatible change to the record/state schema
FORMAT_VERSION = 1

#: live-entry kinds inside snapshots and recovered state
KIND_HOME = "home"
KIND_REPLICA = "replica"

#: records the private mirror log may accumulate before it self-compacts
_MIRROR_COMPACT_THRESHOLD = 1024


class RecoveredState:
    """What recovery found on disk: live entries plus the committed state."""

    def __init__(self, live: dict, meta: dict, state: dict) -> None:
        #: ``entry_id -> (kind, ShardEntry, targets)`` at the last commit
        self.live = live
        #: ``entry_id -> {"answer", "tags", "added_at"}``
        self.meta = meta
        #: the last committed ``state`` record (flush-boundary engine state)
        self.state = state

    def entries(self) -> list[tuple[str, ShardEntry, tuple | None, dict]]:
        """The live entries in ascending id order, joined with their meta."""
        return [
            (*self.live[entry_id], self.meta[entry_id])
            for entry_id in sorted(self.live)
        ]


def recover_dir(path: Path) -> RecoveredState | None:
    """Rebuild the last committed cache state from ``path`` (or ``None``).

    Torn segment tails are truncated in place; a torn record in a non-last
    segment invalidates every later segment (they were written after the
    torn point, so their records would replay out of order).
    """
    path = Path(path)
    live: dict = {}
    meta: dict = {}
    state: dict | None = None
    snap_version = 0
    loaded = snapshot.load_latest_snapshot(path)
    if loaded is not None:
        snap_version, payload = loaded
        live = dict(payload.get("live", {}))
        meta = dict(payload.get("meta", {}))
        state = payload.get("state")
    committed = (dict(live), dict(meta), state)
    for start_version, segment in wal.list_segments(path):
        if start_version < snap_version:
            continue
        scan = wal.read_segment(segment, repair=True)
        for record in scan.records:
            if not (isinstance(record, tuple) and len(record) == 2):
                continue
            kind, payload = record
            if kind == "delta":
                _apply_delta(live, meta, payload)
            elif kind == "meta":
                meta.update(payload)
            elif kind == "state":
                state = payload
                committed = (dict(live), dict(meta), state)
        if not scan.clean:
            break
    live, meta, state = committed
    if state is None:
        return None
    return RecoveredState(live, meta, state)


def _apply_delta(live: dict, meta: dict, record) -> None:
    """Fold one replayed delta into the live-entry map."""
    if record.op == DELTA_INSERT:
        live[record.entry_id] = (KIND_HOME, record.entry, None)
    elif record.op == DELTA_REPLICATE:
        live[record.entry_id] = (KIND_REPLICA, record.entry, record.targets)
    elif record.op == DELTA_MOVE:
        live[record.entry_id] = (KIND_HOME, record.entry, None)
    elif record.op == DELTA_EVICT:
        live.pop(record.entry_id, None)
        meta.pop(record.entry_id, None)
    elif record.op != DELTA_FLUSH:
        raise ValueError(f"unknown delta op {record.op!r} in WAL replay")


def attach_persistence(engine, config: PersistConfig) -> "CachePersister":
    """Open (and, when the directory has state, warm-start from) ``config``."""
    return CachePersister(engine, config)


class CachePersister:
    """Durable WAL + snapshot store behind one engine (see module docs)."""

    def __init__(self, engine, config: PersistConfig) -> None:
        self.config = config
        self.path = Path(config.dir)
        self.path.mkdir(parents=True, exist_ok=True)
        self.fsync = config.fsync
        self.snapshot_interval = config.snapshot_interval
        self._closed = False
        self._writer: wal.WalWriter | None = None
        #: entry ids whose immutable extras already have a ``meta`` record
        #: in the current segment
        self._meta_written: set[int] = set()
        self._records_since_snapshot = 0
        #: whether this open actually rebuilt state from disk
        self.restored = False

        recovered = recover_dir(self.path)
        if recovered is not None:
            self._check_compatible(engine, recovered.state)
            entries = recovered.entries()
            engine.apply_persist_state(entries, recovered.state)
            self.restored = bool(entries) or recovered.state.get("query_counter", 0) > 0

        # Replication source: the sharded engine's own delta log, or a
        # private mirror for engines without one.
        self._mirror: DeltaLog | None = None
        self._seen: set[int] = set()
        #: the mirror's private ShardEntry copies, so an eviction can
        #: release the copy's compiled-payload pointers (the live count of
        #: compiled objects must stay bounded by the cache, not by the
        #: mirror's compaction cadence)
        self._mirror_copies: dict[int, ShardEntry] = {}
        if getattr(engine, "delta_log", None) is None:
            self._mirror = DeltaLog()
            ids = engine.cache.entry_ids()
            for entry_id in ids:
                copy = _shard_entry_of(engine, engine.cache.get(entry_id))
                self._mirror_copies[entry_id] = copy
                self._mirror.append_insert(0, copy)
            if ids:
                self._mirror.append_flush()
            self._seen = set(ids)
        self._last_version = self._log(engine).version
        # Fresh on-disk base: fold whatever we just restored (or the empty
        # state) into a snapshot and start a clean segment at its version,
        # so the rebuilt log's version numbering matches the disk layout.
        # ``wipe`` drops every other artifact: the rebuilt log restarts
        # version numbering from the live-entry count, so the previous
        # incarnation's higher-versioned files would otherwise outrank the
        # new snapshot at the next recovery.
        self._checkpoint(engine, wipe=True)

    # ------------------------------------------------------------------
    @property
    def replication_log(self) -> DeltaLog | None:
        """The log remote followers replay (mirror for single-shard)."""
        return self._mirror

    def _log(self, engine) -> DeltaLog:
        log = getattr(engine, "delta_log", None)
        return log if log is not None else self._mirror

    @staticmethod
    def _check_compatible(engine, state: dict) -> None:
        if state.get("format") != FORMAT_VERSION:
            raise ConfigError(
                f"persist.dir holds format {state.get('format')!r} state; "
                f"this build reads format {FORMAT_VERSION} (use a fresh "
                "directory)"
            )
        shards = getattr(engine, "num_shards", 1)
        if state.get("mode") != engine.mode or state.get("shards") != shards:
            raise ConfigError(
                f"persist.dir was written by a mode={state.get('mode')!r} "
                f"shards={state.get('shards')!r} engine and cannot warm-start "
                f"a mode={engine.mode!r} shards={shards!r} one; point it at a "
                "fresh directory (or restore with the original configuration)"
            )

    # ------------------------------------------------------------------
    # Per-flush append path
    # ------------------------------------------------------------------
    def record_flush(self, engine) -> None:
        """Persist one window flush: its deltas, new-entry meta, and state."""
        if self._closed:
            return
        if self._mirror is not None:
            self._mirror_flush(engine)
        log = self._log(engine)
        records = log.since(self._last_version)
        if not records:
            return
        writer = self._writer
        always = self.fsync == "always"
        fresh_meta: dict = {}
        for record in records:
            if record.op == DELTA_EVICT:
                self._meta_written.discard(record.entry_id)
            elif record.entry is not None and record.entry_id not in self._meta_written:
                fresh_meta[record.entry_id] = engine.persist_entry_meta(record.entry_id)
                self._meta_written.add(record.entry_id)
            writer.append(("delta", record), sync=always)
        if fresh_meta:
            writer.append(("meta", fresh_meta), sync=always)
        writer.append(("state", engine.persist_state()), sync=always)
        if self.fsync == "flush":
            writer.sync()
        elif self.fsync == "never":
            writer.flush()
        self._last_version = log.version
        self._records_since_snapshot += len(records) + 2
        if self._records_since_snapshot >= self.snapshot_interval:
            self._checkpoint(engine)
        elif self._mirror is not None and len(self._mirror) > _MIRROR_COMPACT_THRESHOLD:
            # Bound the mirror's memory; everything up to _last_version is
            # on disk, so folding it only affects (and resets) very stale
            # remote followers — exactly the DeltaLogTruncated contract.
            self._mirror.compact(self._last_version)

    def _mirror_flush(self, engine) -> None:
        """Diff the cache against the last flush into mirror-log records."""
        current = set(engine.cache.entry_ids())
        evicted = sorted(self._seen - current)
        inserted = sorted(current - self._seen)
        if not evicted and not inserted:
            return
        for entry_id in evicted:
            self._mirror.append_evict(0, entry_id)
            # The victim's insert record hit the WAL (payloads included) in
            # an earlier flush batch, and the wire feed never ships
            # compiled state — only this private copy still pins it.
            copy = self._mirror_copies.pop(entry_id, None)
            if copy is not None:
                copy.release_compiled()
        for entry_id in inserted:
            copy = _shard_entry_of(engine, engine.cache.get(entry_id))
            self._mirror_copies[entry_id] = copy
            self._mirror.append_insert(0, copy)
        self._mirror.append_flush()
        self._seen = current

    # ------------------------------------------------------------------
    # Snapshot + segment rotation
    # ------------------------------------------------------------------
    def _checkpoint(self, engine, wipe: bool = False) -> None:
        """Fold the engine's current state into a snapshot; rotate the WAL."""
        log = self._log(engine)
        version = log.version
        replica_targets = getattr(engine, "_replica_targets", None) or {}
        live: dict = {}
        meta: dict = {}
        for entry_id in engine.cache.entry_ids():
            entry = engine.cache.get(entry_id)
            if entry_id in replica_targets:
                kind, targets = KIND_REPLICA, replica_targets[entry_id]
            else:
                kind, targets = KIND_HOME, None
            live[entry_id] = (kind, _shard_entry_of(engine, entry), targets)
            meta[entry_id] = engine.persist_entry_meta(entry_id)
        payload = {
            "format": FORMAT_VERSION,
            "version": version,
            "epoch": log.epoch,
            "live": live,
            "meta": meta,
            "state": engine.persist_state(),
        }
        snapshot.write_snapshot(self.path, version, payload, fsync=self.fsync != "never")
        if self._writer is not None:
            self._writer.close()
        segment_path = self.path / wal.segment_name(version)
        # Never append behind a leftover segment of the same name (a prior
        # incarnation may have used this version before crashing).
        segment_path.unlink(missing_ok=True)
        self._writer = wal.WalWriter(segment_path, fsync_mode=self.fsync)
        self._meta_written = set(live)
        self._records_since_snapshot = 0
        if wipe:
            for other_version, other in snapshot.list_snapshots(self.path):
                if other_version != version:
                    other.unlink(missing_ok=True)
            for other_version, other in wal.list_segments(self.path):
                if other_version != version:
                    other.unlink(missing_ok=True)
            for stray in self.path.glob("*.tmp"):
                stray.unlink(missing_ok=True)
        else:
            snapshot.prune_snapshots(self.path, version)
            wal.prune_segments(self.path, version)

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush (and, unless ``fsync="never"``, fsync) the WAL tail.

        Called by the engine *before* it shuts worker pools down, so a
        clean close never races durability against teardown; idempotent.
        """
        if self._closed:
            return
        self._closed = True
        if self._writer is not None:
            if self.fsync != "never":
                self._writer.sync()
            self._writer.close()
            self._writer = None

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> dict:
        """Store health: directory, segment/snapshot counts, cursor."""
        segments = wal.list_segments(self.path)
        snapshots = snapshot.list_snapshots(self.path)
        return {
            "dir": str(self.path),
            "segments": len(segments),
            "snapshots": len(snapshots),
            "last_version": self._last_version,
            "records_since_snapshot": self._records_since_snapshot,
            "restored": self.restored,
        }

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"<CachePersister {state} dir={str(self.path)!r} fsync={self.fsync!r}>"


def _shard_entry_of(engine, entry) -> ShardEntry:
    """The replica payload of a cache entry, via the engine when sharded.

    The sharded engine's builder compiles missing payloads exactly once in
    the parent; single-shard engines compiled on index insertion already,
    so a plain structural copy shares the same objects.
    """
    make = getattr(engine, "_make_shard_entry", None)
    if make is not None:
        return make(entry)
    return ShardEntry(
        entry_id=entry.entry_id,
        graph=entry.graph,
        features=entry.features,
        compiled_target=entry.compiled_target,
        compiled_plan=entry.compiled_plan,
    )
