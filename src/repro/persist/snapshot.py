"""Atomic compacted snapshots of the durable query cache.

A snapshot is the folded net state of the cache at one WAL version: every
live entry (graph, features, compiled payloads, answer set, replacement
metadata) plus the engine's small mutable state, written as a single
checksummed record behind the same framing :mod:`repro.persist.wal` uses.

Durability relies on the classic temp-file dance: write to a ``.tmp``
sibling, flush + fsync it, :func:`os.replace` onto the final name, fsync
the directory.  A crash at any point leaves either the previous snapshot
or the new one — never a half-written file under the final name — and
recovery validates the checksum anyway, so even a torn rename on a
filesystem without atomic replace degrades to "use the older snapshot".
"""

from __future__ import annotations

import os
import pickle
import zlib
from pathlib import Path

from . import wal

__all__ = [
    "SNAP_MAGIC",
    "list_snapshots",
    "load_latest_snapshot",
    "load_snapshot",
    "prune_snapshots",
    "snapshot_name",
    "snapshot_version",
    "write_snapshot",
]

#: snapshot file magic (framing versioned like the WAL's)
SNAP_MAGIC = b"IGQSNAP1"


def snapshot_name(version: int) -> str:
    """File name of the snapshot folded up to WAL ``version``."""
    return f"snap-{version:016d}.snap"


def snapshot_version(name: str) -> int | None:
    """Inverse of :func:`snapshot_name` (``None`` for foreign files)."""
    if not (name.startswith("snap-") and name.endswith(".snap")):
        return None
    digits = name[5:-5]
    if not digits.isdigit():
        return None
    return int(digits)


def list_snapshots(path: Path) -> list[tuple[int, Path]]:
    """The ``(version, path)`` snapshots under ``path``, oldest first."""
    snapshots = []
    for child in Path(path).iterdir():
        version = snapshot_version(child.name)
        if version is not None:
            snapshots.append((version, child))
    snapshots.sort()
    return snapshots


def write_snapshot(path: Path, version: int, payload: dict, fsync: bool = True) -> Path:
    """Atomically publish ``payload`` as the snapshot at ``version``."""
    path = Path(path)
    target = path / snapshot_name(version)
    tmp = path / f"{target.name}.{os.getpid()}.tmp"
    with open(tmp, "wb") as file:
        file.write(SNAP_MAGIC)
        file.write(wal.encode_record(payload))
        file.flush()
        if fsync:
            os.fsync(file.fileno())
    os.replace(tmp, target)
    if fsync:
        _fsync_dir(path)
    return target


def load_snapshot(path: Path) -> dict | None:
    """Decode one snapshot file; ``None`` if it fails validation."""
    try:
        data = Path(path).read_bytes()
    except OSError:
        return None
    if not data.startswith(SNAP_MAGIC):
        return None
    body = data[len(SNAP_MAGIC) :]
    if len(body) < wal._HEADER.size:
        return None
    length, crc = wal._HEADER.unpack_from(body, 0)
    payload = body[wal._HEADER.size : wal._HEADER.size + length]
    if len(payload) != length or zlib.crc32(payload) != crc:
        return None
    try:
        record = pickle.loads(payload)
    except Exception:  # noqa: BLE001 - a corrupt snapshot is just skipped
        return None
    return record if isinstance(record, dict) else None


def load_latest_snapshot(path: Path) -> tuple[int, dict] | None:
    """Newest snapshot that validates, as ``(version, payload)``."""
    for version, snapshot_path in reversed(list_snapshots(path)):
        payload = load_snapshot(snapshot_path)
        if payload is not None:
            return version, payload
    return None


def prune_snapshots(path: Path, keep_version: int) -> int:
    """Delete snapshots below ``keep_version`` and stray ``.tmp`` leftovers.

    A ``.tmp`` sibling is the residue of a writer killed mid-rename; it was
    never the published snapshot, so recovery already ignores it and
    deleting it here is pure housekeeping.
    """
    removed = 0
    for version, snapshot_path in list_snapshots(path):
        if version < keep_version:
            snapshot_path.unlink(missing_ok=True)
            removed += 1
    for child in Path(path).glob("*.tmp"):
        child.unlink(missing_ok=True)
        removed += 1
    return removed


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # e.g. platforms that cannot open directories
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
