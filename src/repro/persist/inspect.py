"""WAL/snapshot inspection: ``python -m repro.persist.inspect <dir>``.

Read-only by default — the dump never repairs a torn tail, so it is safe
to point at the live directory of a running engine.  ``--records`` prints
one line per WAL record; the summary always reports, per segment, how
many records decode cleanly and where (and why) a torn tail begins.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from . import snapshot, wal

__all__ = ["main"]


def _describe_record(record) -> str:
    if not (isinstance(record, tuple) and len(record) == 2):
        return f"?? {record!r:.60}"
    kind, payload = record
    if kind == "delta":
        parts = [f"delta v{payload.version} {payload.op} shard={payload.shard}"]
        if payload.entry_id is not None:
            parts.append(f"entry={payload.entry_id}")
        if payload.src_shard is not None:
            parts.append(f"src={payload.src_shard}")
        if payload.targets is not None:
            parts.append(f"targets={list(payload.targets)}")
        if payload.entry is not None:
            graph = payload.entry.graph
            parts.append(f"graph={graph.num_vertices}v/{graph.num_edges}e")
        return " ".join(parts)
    if kind == "meta":
        return f"meta entries={sorted(payload)}"
    if kind == "state":
        return (
            f"state queries={payload.get('query_counter')} "
            f"entries={len(payload.get('entry_stats', {}))} "
            f"shards={payload.get('shards')} mode={payload.get('mode')}"
        )
    return f"{kind} {payload!r:.60}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.persist.inspect",
        description="Dump the WAL segments and snapshots of a persist directory.",
    )
    parser.add_argument("dir", help="the PersistConfig.dir to inspect")
    parser.add_argument(
        "--records", action="store_true", help="print every decoded WAL record"
    )
    args = parser.parse_args(argv)
    path = Path(args.dir)
    if not path.is_dir():
        parser.exit(2, f"{path} is not a directory\n")

    snapshots = snapshot.list_snapshots(path)
    print(f"{path}: {len(snapshots)} snapshot(s)")
    for version, snapshot_path in snapshots:
        payload = snapshot.load_snapshot(snapshot_path)
        size = snapshot_path.stat().st_size
        if payload is None:
            print(f"  {snapshot_path.name}  {size} bytes  INVALID")
            continue
        print(
            f"  {snapshot_path.name}  {size} bytes  version={version} "
            f"live_entries={len(payload.get('live', {}))} "
            f"queries={payload.get('state', {}).get('query_counter')}"
        )

    segments = wal.list_segments(path)
    print(f"{path}: {len(segments)} segment(s)")
    torn = 0
    for start_version, segment_path in segments:
        scan = wal.read_segment(segment_path, repair=False)
        status = "clean" if scan.clean else f"TORN ({scan.reason})"
        print(
            f"  {segment_path.name}  {scan.total_bytes} bytes  "
            f"start_version={start_version} records={len(scan.records)}  {status}"
        )
        if not scan.clean:
            torn += 1
            print(
                f"    intact prefix: {scan.valid_bytes} bytes "
                f"({scan.total_bytes - scan.valid_bytes} torn tail bytes)"
            )
        if args.records:
            for record in scan.records:
                print(f"    {_describe_record(record)}")
    return 1 if torn else 0


if __name__ == "__main__":
    raise SystemExit(main())
