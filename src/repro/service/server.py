"""Network front door: an asyncio NDJSON server over :class:`GraphQueryService`.

:func:`serve` binds a TCP endpoint speaking the versioned JSON protocol of
:mod:`repro.service.protocol` (one compact JSON envelope per line) and
bridges it onto an open :class:`~repro.service.service.GraphQueryService`:

* every request names a **tenant**; the server maps it onto a service
  session of the same name, so the fair scheduler's per-tenant weights,
  quotas and rate limits (``EngineConfig.service``) apply to network
  traffic exactly as they do embedded;
* query submissions are **non-blocking** — a tenant over its
  ``max_in_flight`` quota receives a typed ``overloaded`` error instead of
  stalling the connection (and everyone behind it);
* responses are written **as results complete**, matched to requests by
  envelope ``id``, so one connection can keep many queries in flight and a
  slow query never blocks the reply to a fast one.

The asyncio event loop runs on a background daemon thread — callers get a
plain synchronous :class:`ServiceServer` handle (``with serve(service) as
server: ...``) and the engine's own driver thread remains the only place
queries execute, preserving the engine's sequential semantics.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass

from . import protocol
from .service import GraphQueryService

__all__ = ["ServiceServer", "serve"]

#: bytes cap of one NDJSON frame (a ~100k-vertex graph fits comfortably)
MAX_FRAME_BYTES = 1 << 24


@dataclass
class _Connection:
    """Per-connection response plumbing (touched only on the loop thread)."""

    #: completed response envelopes waiting for the writer task
    outbox: asyncio.Queue
    #: query futures dispatched but not yet responded to
    outstanding: int = 0
    #: the reader saw EOF; close the writer once outstanding drains
    eof: bool = False

    def finish_one(self) -> None:
        """One response delivered; signal the writer when fully drained."""
        self.outstanding -= 1
        if self.eof and self.outstanding == 0:
            self.outbox.put_nowait(None)


class ServiceServer:
    """A running network endpoint over one :class:`GraphQueryService`.

    Create it with :func:`serve`; ``host``/``port`` report the bound
    address (``port=0`` requests an ephemeral port).  Closing the server
    stops accepting and tears the event loop down; the underlying service
    is *not* closed — its lifecycle belongs to the caller.
    """

    def __init__(self, service: GraphQueryService, host: str, port: int) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._closed = False
        self._handler_tasks: set = set()
        self._client_writers: set = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServiceServer":
        """Bind the socket and start serving on a background thread."""
        self.service.open()
        self._thread = threading.Thread(
            target=self._run_loop, name="graph-query-server", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_FRAME_BYTES
        )
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        async with server:
            await self._stop.wait()
        # Graceful connection teardown: closing the transports makes every
        # pending readline() return EOF, after which the handlers flush
        # their outboxes and finish on their own.  Waiting for them here
        # (instead of letting asyncio.run() cancel them mid-write) keeps
        # shutdown silent; a handler stuck past the grace period is left
        # to loop teardown.
        for writer in list(self._client_writers):
            writer.close()
        if self._handler_tasks:
            await asyncio.wait(set(self._handler_tasks), timeout=5.0)

    def close(self) -> None:
        """Stop accepting and shut the event loop down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already gone
        if self._thread is not None:
            self._thread.join()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` pair."""
        return (self.host, self.port)

    def __enter__(self) -> "ServiceServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "serving"
        return f"<ServiceServer {state} {self.host}:{self.port}>"

    # ------------------------------------------------------------------
    # Connection handling (loop thread)
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        connection = _Connection(outbox=asyncio.Queue())
        self._handler_tasks.add(asyncio.current_task())
        self._client_writers.add(writer)
        writer_task = asyncio.ensure_future(self._write_responses(writer, connection))
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                self._serve_request(line, connection)
        except (asyncio.IncompleteReadError, ConnectionError, ValueError):
            pass  # client vanished or overran the frame limit; just drop it
        finally:
            connection.eof = True
            if connection.outstanding == 0:
                connection.outbox.put_nowait(None)
            self._client_writers.discard(writer)
            await writer_task
            self._handler_tasks.discard(asyncio.current_task())

    def _serve_request(self, line: bytes, connection: _Connection) -> None:
        """Decode and dispatch one frame; errors become typed responses."""
        request_id = None
        try:
            envelope = protocol.decode_frame(line)
            if isinstance(envelope, dict):
                raw_id = envelope.get("id")
                if isinstance(raw_id, int) and not isinstance(raw_id, bool):
                    request_id = raw_id
            request = protocol.decode_request(envelope)
            if request.op == "ping":
                self._respond(connection, request.request_id, {"pong": True})
            elif request.op == "stats":
                report = self.service.stats().as_dict()
                report["scheduler"] = self.service.scheduler_snapshot()
                self._respond(connection, request.request_id, report)
            elif request.op == "log_since":
                self._respond(
                    connection, request.request_id, self._serve_log_since(request)
                )
            else:
                self._serve_query(request, connection)
        except BaseException as exc:  # noqa: BLE001 - becomes a typed payload
            connection.outbox.put_nowait(
                protocol.encode_response(request_id, error=protocol.error_to_dict(exc))
            )

    def _serve_log_since(self, request: protocol.Request) -> dict:
        """Serve a follower's delta-log tail request (``op="log_since"``).

        The log is the sharded engine's own delta log, or — for a
        single-shard leader with persistence enabled — the persister's
        mirror log.  A cursor below the compaction floor becomes a typed
        ``log_truncated`` error, which the follower answers with
        reset-and-replay from version 0.
        """
        from ..core.shard import DeltaLogTruncated
        from ..persist import replicate

        payload = request.payload
        unknown = sorted(set(payload) - {"version"})
        if unknown:
            raise protocol.ProtocolError(
                f"request.payload has unknown key(s) {unknown}; valid keys "
                "are ['version']",
                code="invalid_request",
                field="request.payload",
            )
        version = payload.get("version", 0)
        if isinstance(version, bool) or not isinstance(version, int) or version < 0:
            raise protocol.ProtocolError(
                f"request.payload.version={version!r} is not valid; expected "
                "a non-negative integer",
                code="invalid_request",
                field="request.payload.version",
            )
        engine = self.service.engine
        log = getattr(engine, "delta_log", None)
        if log is None:
            persister = getattr(engine, "persister", None)
            if persister is not None:
                log = persister.replication_log
        if log is None:
            raise protocol.ProtocolError(
                "this service has no delta log to follow; the leader needs "
                "shards > 1 or a persist.dir",
                code="not_followable",
            )
        try:
            records = log.since(version)
        except DeltaLogTruncated as exc:
            raise protocol.ProtocolError(
                str(exc), code="log_truncated"
            ) from exc
        return {
            "records": [replicate.delta_to_wire(record) for record in records],
            "version": log.version,
            "floor_version": log.floor_version,
            "epoch": log.epoch,
        }

    def _serve_query(self, request: protocol.Request, connection: _Connection) -> None:
        payload = request.payload
        unknown = sorted(set(payload) - {"graph", "mode", "timeout"})
        if unknown:
            raise protocol.ProtocolError(
                f"request.payload has unknown key(s) {unknown}; valid keys "
                "are ['graph', 'mode', 'timeout']",
                code="invalid_request",
                field="request.payload",
            )
        graph = protocol.graph_from_dict(
            payload.get("graph"), field="request.payload.graph"
        )
        mode = payload.get("mode")
        if mode is not None and not isinstance(mode, str):
            raise protocol.ProtocolError(
                f"request.payload.mode={mode!r} is not valid; expected a string",
                code="invalid_request",
                field="request.payload.mode",
            )
        timeout = payload.get("timeout")
        if timeout is not None and (
            isinstance(timeout, bool) or not isinstance(timeout, (int, float))
        ):
            raise protocol.ProtocolError(
                f"request.payload.timeout={timeout!r} is not valid; expected a number",
                code="invalid_request",
                field="request.payload.timeout",
            )
        session = self.service.session(request.tenant, exist_ok=True)
        # Non-blocking: quota pressure becomes an "overloaded" response
        # instead of stalling every tenant multiplexed on this connection.
        future = session.submit(graph, mode, timeout=timeout, block=False)
        connection.outstanding += 1
        loop = self._loop
        request_id = request.request_id

        def deliver(done_future) -> None:
            try:
                result = done_future.result()
            except BaseException as exc:  # noqa: BLE001 - becomes a typed payload
                envelope = protocol.encode_response(
                    request_id, error=protocol.error_to_dict(exc)
                )
            else:
                envelope = protocol.encode_response(
                    request_id, result=protocol.result_to_dict(result)
                )
            try:
                loop.call_soon_threadsafe(self._deliver, connection, envelope)
            except RuntimeError:
                pass  # server torn down before the result came back

        future.add_done_callback(deliver)

    def _deliver(self, connection: _Connection, envelope: dict) -> None:
        """Loop-thread completion: enqueue a query response for the writer."""
        connection.outbox.put_nowait(envelope)
        connection.finish_one()

    def _respond(self, connection: _Connection, request_id: int, result: dict) -> None:
        connection.outbox.put_nowait(
            protocol.encode_response(request_id, result=result)
        )

    async def _write_responses(self, writer, connection: _Connection) -> None:
        """Writer task: drain the outbox until the ``None`` sentinel."""
        try:
            while True:
                envelope = await connection.outbox.get()
                if envelope is None:
                    break
                writer.write(protocol.encode_frame(envelope))
                await writer.drain()
        except (ConnectionError, RuntimeError):
            pass  # client went away mid-write
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass


def serve(
    service: GraphQueryService, *, host: str = "127.0.0.1", port: int = 0
) -> ServiceServer:
    """Expose an (open or openable) service on a TCP endpoint.

    Returns a started :class:`ServiceServer`; ``port=0`` binds an
    ephemeral port (read it back from ``server.port``).  Use as a context
    manager — closing the server leaves ``service`` open for its owner.
    """
    return ServiceServer(service, host, port).start()
