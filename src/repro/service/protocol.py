"""Versioned JSON wire protocol of the graph-query service.

Everything the network front door (:mod:`repro.service.server`) and the
client (:mod:`repro.service.client`) exchange is defined here, so the wire
format has exactly one source of truth:

* **Graphs** — :func:`graph_to_dict` / :func:`graph_from_dict` serialise a
  :class:`~repro.graphs.graph.LabeledGraph` losslessly (vertex order,
  labels, optional edge labels); the round-trip preserves structural
  equality *and* vertex iteration order, which downstream planning relies
  on for determinism.
* **Envelopes** — every request and response carries
  :data:`PROTOCOL_VERSION`; :func:`decode_request` /
  :func:`decode_response` reject any other version with a typed
  :class:`ProtocolError` instead of mis-parsing a future format.
* **Results** — :func:`result_to_dict` / :func:`result_from_dict` carry a
  full :class:`~repro.core.engine.IGQQueryResult` (answers plus the iGQ
  accounting the byte-identity gates compare).
* **Errors** — :func:`error_to_dict` maps service exceptions onto typed
  payloads ``{"code", "message", "field"}``, reusing the
  :class:`~repro.core.config.ConfigError` convention of naming the
  offending field in the message.

Framing is newline-delimited JSON (one compact JSON document per line,
UTF-8): :func:`encode_frame` / :func:`decode_frame`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from ..core.config import ConfigError
from ..core.engine import IGQQueryResult
from ..graphs.graph import LabeledGraph

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "Response",
    "graph_to_dict",
    "graph_from_dict",
    "result_to_dict",
    "result_from_dict",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
    "error_to_dict",
    "encode_frame",
    "decode_frame",
]

#: wire protocol version; bumped on any incompatible change to the schema
PROTOCOL_VERSION = 1

#: operations a request may carry — ``log_since`` streams the engine's
#: delta-log tail to remote followers (:mod:`repro.persist.replicate`)
OPS = ("ping", "query", "stats", "log_since")


class ProtocolError(ValueError):
    """A malformed or version-incompatible wire payload.

    Carries a machine-readable ``code`` and, when the problem is tied to a
    specific payload field, its dotted ``field`` path — the same naming
    convention :class:`~repro.core.config.ConfigError` uses for
    configuration fields.
    """

    def __init__(self, message: str, *, code: str = "protocol_error",
                 field: str | None = None) -> None:
        super().__init__(message)
        self.code = code
        self.field = field


def _require(condition: bool, message: str, *, code: str = "protocol_error",
             field: str | None = None) -> None:
    if not condition:
        raise ProtocolError(message, code=code, field=field)


# ----------------------------------------------------------------------
# Graphs
# ----------------------------------------------------------------------
def graph_to_dict(graph: LabeledGraph) -> dict:
    """Serialise a labeled graph to its wire form.

    Vertices are emitted in iteration order as ``[id, label]`` pairs and
    edges as ``[u, v, label]`` triples (``label`` is ``null`` for the
    unlabeled edges the paper's datasets use).  Ids and labels must be
    JSON-representable (ints and strings in every shipped dataset).
    """
    return {
        "name": graph.name,
        "vertices": [[vertex, graph.label(vertex)] for vertex in graph.vertices()],
        "edges": [[u, v, graph.edge_label(u, v)] for u, v in graph.edges()],
    }


def graph_from_dict(data: Any, *, field: str = "graph") -> LabeledGraph:
    """Rebuild a :func:`graph_to_dict` payload into a :class:`LabeledGraph`.

    The reconstruction preserves vertex insertion order, so a round-tripped
    graph is structurally equal to the original *and* plans identically.
    Malformed payloads raise :class:`ProtocolError` naming the offending
    field.
    """
    _require(isinstance(data, dict),
             f"{field}={data!r} is not valid; expected a graph object",
             code="invalid_graph", field=field)
    name = data.get("name")
    _require(name is None or isinstance(name, str),
             f"{field}.name={name!r} is not valid; expected a string or null",
             code="invalid_graph", field=f"{field}.name")
    vertices = data.get("vertices")
    _require(isinstance(vertices, list),
             f"{field}.vertices is not valid; expected a list of [id, label] pairs",
             code="invalid_graph", field=f"{field}.vertices")
    edges = data.get("edges")
    _require(isinstance(edges, list),
             f"{field}.edges is not valid; expected a list of [u, v, label] triples",
             code="invalid_graph", field=f"{field}.edges")
    unknown = sorted(set(data) - {"name", "vertices", "edges"})
    _require(not unknown,
             f"{field} has unknown key(s) {unknown}; valid keys are "
             "['edges', 'name', 'vertices']",
             code="invalid_graph", field=field)
    graph = LabeledGraph(name=name)
    for index, pair in enumerate(vertices):
        _require(isinstance(pair, (list, tuple)) and len(pair) == 2,
                 f"{field}.vertices[{index}]={pair!r} is not valid; expected "
                 "an [id, label] pair",
                 code="invalid_graph", field=f"{field}.vertices[{index}]")
        vertex, label = pair
        _require(not graph.has_vertex(vertex),
                 f"{field}.vertices[{index}] repeats vertex id {vertex!r}",
                 code="invalid_graph", field=f"{field}.vertices[{index}]")
        graph.add_vertex(vertex, label)
    for index, triple in enumerate(edges):
        _require(isinstance(triple, (list, tuple)) and len(triple) in (2, 3),
                 f"{field}.edges[{index}]={triple!r} is not valid; expected "
                 "a [u, v, label] triple",
                 code="invalid_graph", field=f"{field}.edges[{index}]")
        u, v = triple[0], triple[1]
        label = triple[2] if len(triple) == 3 else None
        _require(graph.has_vertex(u) and graph.has_vertex(v) and u != v
                 and not graph.has_edge(u, v),
                 f"{field}.edges[{index}]=[{u!r}, {v!r}] is not valid; edges "
                 "must connect two distinct declared vertices exactly once",
                 code="invalid_graph", field=f"{field}.edges[{index}]")
        graph.add_edge(u, v, label)
    return graph


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
def _sorted_ids(values) -> list:
    """Deterministic JSON ordering for a set of dataset-graph ids."""
    return sorted(values, key=repr)


def result_to_dict(result) -> dict:
    """Serialise a query result (plain or iGQ-enriched) to its wire form."""
    return {
        "query_name": result.query_name,
        "answers": _sorted_ids(result.answers),
        "candidates": _sorted_ids(result.candidates),
        "guaranteed_answers": _sorted_ids(getattr(result, "guaranteed_answers", ())),
        "pruned_candidates": _sorted_ids(getattr(result, "pruned_candidates", ())),
        "num_isomorphism_tests": result.num_isomorphism_tests,
        "num_sub_hits": getattr(result, "num_sub_hits", 0),
        "num_super_hits": getattr(result, "num_super_hits", 0),
        "exact_hit": bool(getattr(result, "exact_hit", False)),
        "verification_skipped": bool(getattr(result, "verification_skipped", False)),
        "filter_seconds": result.filter_seconds,
        "igq_seconds": result.igq_seconds,
        "verify_seconds": result.verify_seconds,
    }


_RESULT_KEYS = {
    "query_name", "answers", "candidates", "guaranteed_answers",
    "pruned_candidates", "num_isomorphism_tests", "num_sub_hits",
    "num_super_hits", "exact_hit", "verification_skipped",
    "filter_seconds", "igq_seconds", "verify_seconds",
}


def result_from_dict(data: Any, *, field: str = "result") -> IGQQueryResult:
    """Rebuild a :func:`result_to_dict` payload into an :class:`IGQQueryResult`."""
    _require(isinstance(data, dict),
             f"{field}={data!r} is not valid; expected a result object",
             code="invalid_result", field=field)
    unknown = sorted(set(data) - _RESULT_KEYS)
    _require(not unknown,
             f"{field} has unknown key(s) {unknown}",
             code="invalid_result", field=field)
    try:
        return IGQQueryResult(
            query_name=data.get("query_name"),
            answers=set(data.get("answers", ())),
            candidates=set(data.get("candidates", ())),
            guaranteed_answers=set(data.get("guaranteed_answers", ())),
            pruned_candidates=set(data.get("pruned_candidates", ())),
            num_isomorphism_tests=int(data.get("num_isomorphism_tests", 0)),
            num_sub_hits=int(data.get("num_sub_hits", 0)),
            num_super_hits=int(data.get("num_super_hits", 0)),
            exact_hit=bool(data.get("exact_hit", False)),
            verification_skipped=bool(data.get("verification_skipped", False)),
            filter_seconds=float(data.get("filter_seconds", 0.0)),
            igq_seconds=float(data.get("igq_seconds", 0.0)),
            verify_seconds=float(data.get("verify_seconds", 0.0)),
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            f"{field} is not valid: {exc}", code="invalid_result", field=field
        ) from None


# ----------------------------------------------------------------------
# Envelopes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Request:
    """A decoded request envelope."""

    op: str
    request_id: int
    tenant: str
    payload: dict


@dataclass(frozen=True)
class Response:
    """A decoded response envelope (``result`` xor ``error`` is set)."""

    request_id: int | None
    result: dict | None
    error: dict | None

    @property
    def ok(self) -> bool:
        """True when the request succeeded."""
        return self.error is None


def encode_request(op: str, *, request_id: int, tenant: str = "default",
                   payload: dict | None = None) -> dict:
    """Build a request envelope (the client side of the wire)."""
    return {
        "protocol_version": PROTOCOL_VERSION,
        "id": request_id,
        "op": op,
        "tenant": tenant,
        "payload": payload or {},
    }


def _check_version(data: dict, field: str) -> None:
    version = data.get("protocol_version")
    _require(
        version == PROTOCOL_VERSION,
        f"{field}.protocol_version={version!r} is not supported; this "
        f"endpoint speaks version {PROTOCOL_VERSION}",
        code="unsupported_version", field=f"{field}.protocol_version",
    )


def decode_request(data: Any) -> Request:
    """Validate and decode a request envelope (the server side)."""
    _require(isinstance(data, dict),
             f"request={data!r} is not valid; expected a JSON object",
             code="invalid_request", field="request")
    _check_version(data, "request")
    op = data.get("op")
    _require(op in OPS,
             f"request.op={op!r} is not valid; expected one of {OPS}",
             code="invalid_request", field="request.op")
    request_id = data.get("id")
    _require(isinstance(request_id, int) and not isinstance(request_id, bool),
             f"request.id={request_id!r} is not valid; expected an integer",
             code="invalid_request", field="request.id")
    tenant = data.get("tenant", "default")
    _require(isinstance(tenant, str) and tenant,
             f"request.tenant={tenant!r} is not valid; expected a non-empty string",
             code="invalid_request", field="request.tenant")
    payload = data.get("payload", {})
    _require(isinstance(payload, dict),
             f"request.payload={payload!r} is not valid; expected an object",
             code="invalid_request", field="request.payload")
    return Request(op=op, request_id=request_id, tenant=tenant, payload=payload)


def encode_response(request_id: int | None, *, result: dict | None = None,
                    error: dict | None = None) -> dict:
    """Build a response envelope (exactly one of ``result`` / ``error``)."""
    if (result is None) == (error is None):
        raise ValueError("a response carries exactly one of result= or error=")
    envelope: dict = {"protocol_version": PROTOCOL_VERSION, "id": request_id}
    if error is not None:
        envelope["error"] = error
    else:
        envelope["result"] = result
    return envelope


def decode_response(data: Any) -> Response:
    """Validate and decode a response envelope (the client side)."""
    _require(isinstance(data, dict),
             f"response={data!r} is not valid; expected a JSON object",
             code="invalid_response", field="response")
    _check_version(data, "response")
    request_id = data.get("id")
    _require(request_id is None
             or (isinstance(request_id, int) and not isinstance(request_id, bool)),
             f"response.id={request_id!r} is not valid; expected an integer or null",
             code="invalid_response", field="response.id")
    error = data.get("error")
    result = data.get("result")
    _require((result is None) != (error is None),
             "response must carry exactly one of 'result' / 'error'",
             code="invalid_response", field="response")
    if error is not None:
        _require(isinstance(error, dict) and isinstance(error.get("code"), str)
                 and isinstance(error.get("message"), str),
                 f"response.error={error!r} is not valid; expected "
                 "{'code', 'message', 'field'}",
                 code="invalid_response", field="response.error")
    return Response(request_id=request_id, result=result, error=error)


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------
def error_to_dict(exc: BaseException) -> dict:
    """Map a service-side exception onto its typed wire payload.

    ``code`` is machine-readable (clients branch on it), ``message`` keeps
    the ConfigError-style ``section.field=value`` phrasing, and ``field``
    names the offending request field when one is known.
    """
    from .scheduler import AdmissionError
    from .service import QueryTimeout, ServiceClosed

    if isinstance(exc, ProtocolError):
        return {"code": exc.code, "message": str(exc), "field": exc.field}
    if isinstance(exc, QueryTimeout):
        return {"code": "timeout", "message": str(exc), "field": None}
    if isinstance(exc, AdmissionError):
        return {"code": "overloaded", "message": str(exc), "field": None}
    if isinstance(exc, ServiceClosed):
        return {"code": "closed", "message": str(exc), "field": None}
    if isinstance(exc, ConfigError):
        return {"code": "invalid_config", "message": str(exc), "field": None}
    if isinstance(exc, ValueError):
        return {"code": "invalid_request", "message": str(exc), "field": None}
    return {"code": "internal", "message": f"{type(exc).__name__}: {exc}", "field": None}


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(envelope: dict) -> bytes:
    """One compact JSON document plus the newline terminator (UTF-8)."""
    return json.dumps(envelope, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> Any:
    """Parse one received line; malformed JSON raises :class:`ProtocolError`."""
    try:
        return json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(
            f"frame is not valid JSON: {exc}", code="invalid_json", field=None
        ) from None
