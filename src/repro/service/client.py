"""Synchronous client for the network front door (:mod:`repro.service.server`).

:func:`connect` opens one TCP connection speaking the versioned NDJSON
protocol and returns a :class:`ServiceClient`:

* :meth:`~ServiceClient.submit` sends a query and returns a
  :class:`concurrent.futures.Future` — many queries can be in flight on one
  connection, and a background reader thread matches responses to requests
  by envelope ``id`` (the server answers in completion order, not
  submission order);
* :meth:`~ServiceClient.query` is the blocking convenience form, returning
  the same :class:`~repro.core.engine.IGQQueryResult` the embedded service
  yields — answers and accounting are byte-identical because the engine
  behind the socket is the same code path;
* typed server errors are raised as their local exception types
  (``timeout`` → :class:`~repro.service.service.QueryTimeout`,
  ``overloaded`` → :class:`~repro.service.scheduler.AdmissionError`,
  ``closed`` → :class:`~repro.service.service.ServiceClosed`, protocol
  violations → :class:`~repro.service.protocol.ProtocolError`).
"""

from __future__ import annotations

import itertools
import socket
import threading
from concurrent.futures import Future

from ..core.config import ConfigError
from ..core.engine import IGQQueryResult
from ..graphs.graph import LabeledGraph
from . import protocol
from .scheduler import AdmissionError
from .service import QueryTimeout, ServiceClosed

__all__ = ["ServiceClient", "connect"]


def _exception_for(error: dict) -> BaseException:
    """Rebuild the local exception a typed error payload stands for."""
    code = error.get("code", "internal")
    message = error.get("message", "")
    if code == "timeout":
        return QueryTimeout(message)
    if code == "overloaded":
        return AdmissionError(message)
    if code == "closed":
        return ServiceClosed(message)
    if code == "invalid_config":
        return ConfigError(message)
    if code == "internal":
        return RuntimeError(message)
    return protocol.ProtocolError(message, code=code, field=error.get("field"))


class ServiceClient:
    """One connection to a :class:`~repro.service.server.ServiceServer`.

    Parameters
    ----------
    host, port:
        The server's bound address.
    tenant:
        Tenant name stamped on every request — the identity the server's
        fair scheduler applies weights, quotas and rate limits to (and the
        session its stats are attributed to).
    """

    def __init__(self, host: str, port: int, *, tenant: str = "default") -> None:
        self.tenant = tenant
        self._sock = socket.create_connection((host, port))
        self._reader = self._sock.makefile("rb")
        self._write_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[int, Future] = {}
        self._request_ids = itertools.count(1)
        self._closed = False
        self._reader_thread = threading.Thread(
            target=self._read_responses, name="graph-query-client", daemon=True
        )
        self._reader_thread.start()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def _send(self, op: str, payload: dict | None = None) -> Future:
        if self._closed:
            raise ServiceClosed("the client is closed")
        request_id = next(self._request_ids)
        future: Future = Future()
        with self._pending_lock:
            self._pending[request_id] = future
        envelope = protocol.encode_request(
            op, request_id=request_id, tenant=self.tenant, payload=payload
        )
        try:
            with self._write_lock:
                self._sock.sendall(protocol.encode_frame(envelope))
        except OSError as exc:
            with self._pending_lock:
                self._pending.pop(request_id, None)
            raise ConnectionError("the server connection is gone") from exc
        return future

    def ping(self) -> dict:
        """Round-trip a no-op request (liveness + protocol handshake)."""
        return self._send("ping").result()

    def submit(
        self,
        query: LabeledGraph,
        mode: str | None = None,
        *,
        timeout: float | None = None,
    ) -> Future:
        """Send a query; the future resolves to its :class:`IGQQueryResult`.

        ``timeout`` is enforced *server-side* (the submission expires with
        a ``timeout`` error payload); admission failures surface as
        :class:`~repro.service.scheduler.AdmissionError` — back off and
        resubmit.
        """
        payload: dict = {"graph": protocol.graph_to_dict(query)}
        if mode is not None:
            payload["mode"] = mode
        if timeout is not None:
            payload["timeout"] = timeout
        raw = self._send("query", payload)
        future: Future = Future()

        def decode(done_future) -> None:
            if not future.set_running_or_notify_cancel():
                return
            try:
                future.set_result(
                    protocol.result_from_dict(done_future.result())
                )
            except BaseException as exc:  # noqa: BLE001 - relayed to the caller
                future.set_exception(exc)

        raw.add_done_callback(decode)
        return future

    def query(
        self,
        query: LabeledGraph,
        mode: str | None = None,
        *,
        timeout: float | None = None,
    ) -> IGQQueryResult:
        """Blocking form of :meth:`submit`."""
        return self.submit(query, mode, timeout=timeout).result()

    def stats(self) -> dict:
        """The server's :meth:`ServiceReport.as_dict` snapshot (+ scheduler)."""
        return self._send("stats").result()

    def log_since(self, version: int = 0) -> dict:
        """The leader's delta-log tail after ``version`` (follower feed).

        Returns ``{"records": [...], "version": ..., "floor_version": ...,
        "epoch": ...}``; a cursor below the leader's compaction floor
        raises a :class:`~repro.service.protocol.ProtocolError` with
        ``code="log_truncated"`` — reset and refetch from 0 (what
        :meth:`repro.persist.replicate.CacheFollower.poll` automates).
        """
        return self._send("log_since", {"version": version}).result()

    # ------------------------------------------------------------------
    # Response reader (background thread)
    # ------------------------------------------------------------------
    def _read_responses(self) -> None:
        try:
            while True:
                line = self._reader.readline()
                if not line:
                    break
                self._handle_response(line)
        except (OSError, ValueError):
            pass  # socket torn down under the reader
        finally:
            self._fail_pending(ConnectionError("the server connection closed"))

    def _handle_response(self, line: bytes) -> None:
        response = protocol.decode_response(protocol.decode_frame(line))
        if response.request_id is None:
            # A request so malformed the server could not even read its id;
            # there is no future to route it to — drop it (the sender's
            # future fails when the connection dies, if it ever existed).
            return
        with self._pending_lock:
            future = self._pending.pop(response.request_id, None)
        if future is None:
            return
        if response.error is not None:
            future.set_exception(_exception_for(response.error))
        else:
            future.set_result(response.result)

    def _fail_pending(self, exc: BaseException) -> None:
        with self._pending_lock:
            pending, self._pending = dict(self._pending), {}
        for future in pending.values():
            try:
                future.set_exception(exc)
            except Exception:  # noqa: BLE001 - already resolved
                pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the connection; outstanding futures fail (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        self._reader_thread.join()
        self._reader.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "connected"
        return f"<ServiceClient {state} tenant={self.tenant!r}>"


def connect(host: str, port: int, *, tenant: str = "default") -> ServiceClient:
    """Open a client connection to a served graph-query endpoint."""
    return ServiceClient(host, port, tenant=tenant)
