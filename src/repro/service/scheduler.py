"""Fairness-aware task scheduling for the service front door.

:class:`FairScheduler` replaces the single FIFO submission queue of the
original service with one queue per tenant and a **deficit round-robin**
dispatcher: each tenant accumulates ``weight`` units of service credit when
the dispatch cursor reaches it and spends one unit per dequeued query, so a
tenant with weight 4 gets four consecutive dispatch slots for every one a
weight-1 tenant gets — and, crucially, a tenant flooding its own queue can
never push another tenant's queries back (the cursor always comes around).
With a single tenant the discipline degenerates to plain FIFO, which is what
keeps the embedded service path byte-identical to the original driver loop.

Admission control happens at the edges:

* ``submit()`` enforces the tenant's ``max_in_flight`` quota — blocking
  (embedded callers get backpressure, as before) or non-blocking (the
  network server turns the quota into a typed ``overloaded`` error via
  :class:`AdmissionError`);
* ``next()`` enforces the tenant's token-bucket ``rate_limit`` — a tenant
  over its rate leaves its queue untouched while others are served, and a
  blocking ``next()`` sleeps exactly until the earliest token refill.

The scheduler owns no threads; the service's driver thread calls ``next()``
and submitters call ``submit()`` / ``discard()`` / ``finish()`` — all state
lives behind one lock.  Draining (after :meth:`close`) ignores rate limits
so shutdown never waits on a token bucket.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from ..core.config import ServiceConfig, TenantConfig

__all__ = ["CLOSED", "AdmissionError", "SchedulerClosed", "FairScheduler"]


class AdmissionError(RuntimeError):
    """A non-blocking submission exceeded the tenant's ``max_in_flight`` quota."""


class SchedulerClosed(RuntimeError):
    """The scheduler no longer accepts submissions."""


class _Closed:
    """Sentinel returned by :meth:`FairScheduler.next` once fully drained."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<CLOSED>"


CLOSED = _Closed()


class _TenantState:
    """One tenant's queue, DRR deficit, quota and token bucket."""

    __slots__ = (
        "name",
        "weight",
        "max_in_flight",
        "rate",
        "burst",
        "queue",
        "deficit",
        "in_flight",
        "tokens",
        "refilled_at",
    )

    def __init__(self, config: TenantConfig, now: float) -> None:
        self.name = config.name
        self.weight = config.weight
        self.max_in_flight = config.max_in_flight
        self.rate = config.rate_limit
        # One full-rate second of burst (>= 1 so a fresh tenant never waits).
        self.burst = max(1.0, config.rate_limit or 0.0)
        self.queue: deque = deque()
        self.deficit = 0
        self.in_flight = 0
        self.tokens = self.burst
        self.refilled_at = now

    def _refill(self, now: float) -> None:
        if self.rate is not None and now > self.refilled_at:
            self.tokens = min(self.burst, self.tokens + (now - self.refilled_at) * self.rate)
            self.refilled_at = now

    def ready(self, now: float) -> bool:
        """True when the token bucket allows a dispatch right now."""
        if self.rate is None:
            return True
        self._refill(now)
        return self.tokens >= 1.0

    def ready_at(self, now: float) -> float:
        """Earliest time the next token becomes available."""
        self._refill(now)
        return now + max(0.0, (1.0 - self.tokens) / self.rate)

    def consume(self, now: float) -> None:
        """Spend one rate token for a dispatch."""
        if self.rate is not None:
            self._refill(now)
            self.tokens -= 1.0


class FairScheduler:
    """Per-tenant queues behind a deficit round-robin dispatcher.

    Tasks are opaque to the scheduler except for two attributes it manages:
    ``task.tenant`` (set by the caller before :meth:`submit`) and
    ``task.finalized`` (written by :meth:`finish` to make slot release
    idempotent under the cancel/timeout/resolve races).
    """

    def __init__(self, config: ServiceConfig, *, clock=time.monotonic) -> None:
        self._config = config
        self._clock = clock
        self._lock = threading.Lock()
        #: signalled when a task is queued or the scheduler closes
        self._ready = threading.Condition(self._lock)
        #: signalled when an in-flight slot frees up
        self._space = threading.Condition(self._lock)
        self._tenants: dict[str, _TenantState] = {}
        self._ring: list[_TenantState] = []
        self._cursor = 0
        self._queued = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Submission side
    # ------------------------------------------------------------------
    def _tenant(self, name: str) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = _TenantState(self._config.tenant(name), self._clock())
            self._tenants[name] = state
            self._ring.append(state)
        return state

    def submit(self, task, *, block: bool = True) -> None:
        """Enqueue ``task`` under its tenant, enforcing the in-flight quota.

        Blocking form waits for a slot (embedded backpressure); the
        non-blocking form raises :class:`AdmissionError` when the tenant is
        at quota.  Raises :class:`SchedulerClosed` after :meth:`close`.
        """
        with self._lock:
            state = self._tenant(task.tenant)
            while not self._closed and state.in_flight >= state.max_in_flight:
                if not block:
                    raise AdmissionError(
                        f"tenant {state.name!r} is over its "
                        f"max_in_flight={state.max_in_flight} quota"
                    )
                self._space.wait()
            if self._closed:
                raise SchedulerClosed("the scheduler is closed")
            state.in_flight += 1
            task.finalized = False
            state.queue.append(task)
            self._queued += 1
            self._ready.notify()

    def discard(self, task) -> bool:
        """Remove a not-yet-dispatched task from its tenant queue.

        Returns True when the task was still queued (the caller then owns
        its finalisation); False when the driver already dequeued it.
        """
        with self._lock:
            state = self._tenants.get(task.tenant)
            if state is None:
                return False
            try:
                state.queue.remove(task)
            except ValueError:
                return False
            self._queued -= 1
            return True

    def finish(self, task) -> None:
        """Release the task's in-flight slot (idempotent)."""
        with self._lock:
            if getattr(task, "finalized", True):
                return
            task.finalized = True
            self._tenants[task.tenant].in_flight -= 1
            self._space.notify_all()

    # ------------------------------------------------------------------
    # Dispatch side
    # ------------------------------------------------------------------
    def next(self, *, block: bool = True):
        """Dequeue the next task the DRR discipline selects.

        Returns a task; or ``None`` when nothing is dispatchable and
        ``block=False``; or :data:`CLOSED` once the scheduler is closed and
        every queue has drained.  The blocking form sleeps until a task
        arrives or — when queued tenants are merely rate-limited — until
        the earliest token refill.
        """
        with self._lock:
            while True:
                now = self._clock()
                task, ready_at = self._pick(now)
                if task is not None:
                    return task
                if self._closed:
                    return CLOSED
                if not block:
                    return None
                if ready_at is None:
                    self._ready.wait()
                else:
                    self._ready.wait(timeout=max(0.0, ready_at - now))

    def _pick(self, now: float):
        """One DRR scan: the chosen task, or the earliest token-refill time."""
        if self._queued == 0:
            return None, None
        ring = self._ring
        size = len(ring)
        ready_at = None
        # Two sweeps bound the scan: a backlogged, dispatchable tenant is
        # served by its second visit at the latest (the first may only
        # replenish its deficit).
        for _ in range(2 * size):
            state = ring[self._cursor % size]
            if not state.queue:
                # An idle tenant forfeits unused credit (standard DRR) so it
                # cannot hoard a burst allowance while away.
                state.deficit = 0
                self._cursor = (self._cursor + 1) % size
                continue
            if not self._closed and not state.ready(now):
                tenant_ready = state.ready_at(now)
                if ready_at is None or tenant_ready < ready_at:
                    ready_at = tenant_ready
                self._cursor = (self._cursor + 1) % size
                continue
            if state.deficit < 1:
                state.deficit += state.weight
            state.deficit -= 1
            if not self._closed:
                state.consume(now)
            task = state.queue.popleft()
            self._queued -= 1
            if not state.queue:
                state.deficit = 0
                self._cursor = (self._cursor + 1) % size
            elif state.deficit < 1:
                self._cursor = (self._cursor + 1) % size
            return task, None
        return None, ready_at

    # ------------------------------------------------------------------
    # Lifecycle and introspection
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop admissions; ``next()`` drains the backlog, then reports CLOSED."""
        with self._lock:
            self._closed = True
            self._ready.notify_all()
            self._space.notify_all()

    @property
    def queued(self) -> int:
        """Number of tasks currently waiting across all tenant queues."""
        with self._lock:
            return self._queued

    def snapshot(self) -> dict:
        """Per-tenant scheduling state (for reports and tests)."""
        with self._lock:
            return {
                state.name: {
                    "queued": len(state.queue),
                    "in_flight": state.in_flight,
                    "weight": state.weight,
                    "max_in_flight": state.max_in_flight,
                    "rate_limit": state.rate,
                }
                for state in self._ring
            }
