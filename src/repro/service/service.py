"""`GraphQueryService`: the one public front door to the iGQ engine.

The engine layer grew four generations of execution machinery — batch
executor, compiled verification, unified containment, sharded cache — each
reachable through its own flags and each owning long-lived resources
(verification pools, per-shard worker processes) with no single place that
opens and closes them.  :class:`GraphQueryService` packages all of it behind
a session object:

* **Lifecycle** — ``with GraphQueryService(method, config, database=db) as
  service:`` builds the engine :meth:`~repro.core.engine.IGQ.from_config`
  describes (single-shard or sharded), indexes the dataset, starts the
  execution driver, and on exit deterministically shuts down every worker
  pool (the batch executor's and the shard runtime's).

* **One endpoint** — :meth:`GraphQueryService.query` serves *both* query
  types (``mode="subgraph"`` / ``"supergraph"``) against one shared engine;
  a mixed stream keeps the two answer-set flavours apart in the cache while
  sharing window, replacement policy and shard partitions.

* **Asynchrony with sequential semantics** — :meth:`submit` enqueues a query
  and returns a :class:`~concurrent.futures.Future`; :meth:`stream` pipes an
  iterable through with bounded in-flight backpressure, yielding results in
  submission order.  Execution happens on a single driver thread feeding the
  deterministic :class:`~repro.core.batch.BatchExecutor`, so answers,
  accounting, cache contents and replacement state are byte-identical to a
  plain sequential ``engine.query()`` loop — whatever the batch/shard
  configuration.

* **Multi-tenant QoS** — sessions double as *tenants*: each session's
  submissions land in that tenant's queue of a
  :class:`~repro.service.scheduler.FairScheduler` (deficit round-robin with
  per-tenant ``weight`` / ``max_in_flight`` / ``rate_limit`` from
  :class:`~repro.core.config.ServiceConfig`), so one tenant's backlog cannot
  starve another.  A lone tenant degenerates to plain FIFO — which is what
  keeps single-stream answers and accounting byte-identical to the original
  driver loop.

* **Cancellation and timeouts** — ``Future.cancel()`` on a not-yet-started
  submission removes it from its queue immediately (the driver never
  executes it, its quota slot frees at once); ``submit(timeout=...)`` (or
  ``ServiceConfig.default_timeout_seconds``) expires a submission with
  :class:`QueryTimeout` whether it is still queued or already dispatched.

* **Introspection** — :meth:`stats` returns a :class:`ServiceReport` (cache
  hit rates, per-stage timings, shard balance, per-session accounting);
  :meth:`session` opens named sub-accounts over the shared engine.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from collections.abc import Iterable, Iterator
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field, replace as dataclass_replace

from ..core.batch import ABORTED, DRAIN, BatchExecutor
from ..core.config import (
    MIXED_MODE,
    SUPERGRAPH_MODE,
    ConfigError,
    EngineConfig,
    validate_query_mode,
)
from ..core.engine import IGQ, IGQQueryResult
from ..graphs.database import GraphDatabase
from ..graphs.graph import LabeledGraph
from ..methods.base import SubgraphQueryMethod
from .scheduler import CLOSED, FairScheduler, SchedulerClosed

__all__ = [
    "ServiceClosed",
    "QueryTimeout",
    "SessionStats",
    "ServiceReport",
    "ServiceSession",
    "GraphQueryService",
]

#: the tenant anonymous (session-less) submissions are accounted to
DEFAULT_TENANT = "default"


class ServiceClosed(RuntimeError):
    """The service is not open (never opened, closed, or driver failed)."""


class QueryTimeout(TimeoutError):
    """A submitted query expired before its result became observable.

    Raised from the future of a submission whose deadline passed — whether
    it was still queued (the scheduler drops it without executing) or
    already dispatched (the engine finishes the work for cache consistency,
    but the caller sees this instead of a late result).
    """


@dataclass
class SessionStats:
    """Accounting for one session (or the service-wide totals)."""

    name: str
    queries: int = 0
    subgraph_queries: int = 0
    supergraph_queries: int = 0
    #: queries answered straight from the cache (§4.3 exact repeat)
    exact_hits: int = 0
    #: queries that skipped verification entirely
    verification_skipped: int = 0
    #: queries with at least one component hit (drives the hit rate)
    hit_queries: int = 0
    sub_hits: int = 0
    super_hits: int = 0
    isomorphism_tests: int = 0
    guaranteed_answers: int = 0
    pruned_candidates: int = 0
    filter_seconds: float = 0.0
    igq_seconds: float = 0.0
    verify_seconds: float = 0.0

    def record(self, result: IGQQueryResult, supergraph: bool) -> None:
        """Fold one query result into the counters."""
        self.queries += 1
        if supergraph:
            self.supergraph_queries += 1
        else:
            self.subgraph_queries += 1
        self.exact_hits += bool(result.exact_hit)
        self.verification_skipped += bool(result.verification_skipped)
        self.hit_queries += bool(result.num_sub_hits or result.num_super_hits)
        self.sub_hits += result.num_sub_hits
        self.super_hits += result.num_super_hits
        self.isomorphism_tests += result.num_isomorphism_tests
        self.guaranteed_answers += len(result.guaranteed_answers)
        self.pruned_candidates += len(result.pruned_candidates)
        self.filter_seconds += result.filter_seconds
        self.igq_seconds += result.igq_seconds
        self.verify_seconds += result.verify_seconds

    @property
    def hit_rate(self) -> float:
        """Fraction of queries with at least one query-index hit."""
        return self.hit_queries / self.queries if self.queries else 0.0

    @property
    def total_seconds(self) -> float:
        """Total engine time across the three stages."""
        return self.filter_seconds + self.igq_seconds + self.verify_seconds

    def as_dict(self) -> dict:
        """JSON-serialisable snapshot of the counters (report payload)."""
        return {
            "name": self.name,
            "queries": self.queries,
            "subgraph_queries": self.subgraph_queries,
            "supergraph_queries": self.supergraph_queries,
            "exact_hits": self.exact_hits,
            "verification_skipped": self.verification_skipped,
            "hit_queries": self.hit_queries,
            "hit_rate": self.hit_rate,
            "sub_hits": self.sub_hits,
            "super_hits": self.super_hits,
            "isomorphism_tests": self.isomorphism_tests,
            "guaranteed_answers": self.guaranteed_answers,
            "pruned_candidates": self.pruned_candidates,
            "filter_seconds": self.filter_seconds,
            "igq_seconds": self.igq_seconds,
            "verify_seconds": self.verify_seconds,
            "total_seconds": self.total_seconds,
        }


@dataclass
class ServiceReport:
    """Structured snapshot of a service's state (``service.stats()``)."""

    #: the engine configuration, in :meth:`EngineConfig.to_dict` form
    config: dict
    #: service-wide accounting
    totals: SessionStats
    #: per-session accounting, keyed by session name
    sessions: dict[str, SessionStats]
    #: live cached queries / configured capacity
    cache_size: int
    cache_capacity: int
    #: engine-global query counter (includes warm-up, drives M(g))
    queries_seen: int
    #: cache partitions and their live-entry balance
    shards: int
    shard_backend: str
    shard_balance: list[int]
    #: batch-executor counters (feature memo, pool usage, pipelining)
    feature_memo_hits: int
    feature_memo_misses: int
    parallel_verifications: int
    sequential_verifications: int
    pipelined_plans: int
    pipeline_replans: int
    #: hot-key replication / rebalancing state (zeros on 1-shard engines)
    shard_probe_load: list[int] = field(default_factory=list)
    replica_counts: list[int] = field(default_factory=list)
    replicas_live: int = 0
    moves_applied: int = 0
    #: delta-log health: length, version, last-compaction floor, records
    #: folded away by compaction so far
    delta_log: dict = field(default_factory=dict)
    #: which kernel backend actually ran, per stage: ``configured`` (the
    #: requested ``verifier.kernel``), ``parent`` (what this process
    #: resolved it to), ``workers`` (backend -> chunk count folded back from
    #: the batch pool) and ``shards`` (shard id -> backend from the last
    #: probe round).  Kernel resolution is per *process*, so a worker that
    #: could not load the native library runs ``"bigint"`` while the parent
    #: runs ``"native"`` — this block makes that fallback visible instead
    #: of silently slower.
    kernel_resolved: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-serialisable form (dashboards, experiment archives)."""
        return {
            "config": self.config,
            "totals": self.totals.as_dict(),
            "sessions": {name: stats.as_dict() for name, stats in self.sessions.items()},
            "cache": {
                "size": self.cache_size,
                "capacity": self.cache_capacity,
                "queries_seen": self.queries_seen,
                "hit_rate": self.totals.hit_rate,
            },
            "shards": {
                "count": self.shards,
                "backend": self.shard_backend,
                "balance": self.shard_balance,
                "probe_load": self.shard_probe_load,
                "replica_counts": self.replica_counts,
                "replicas_live": self.replicas_live,
                "moves_applied": self.moves_applied,
            },
            "delta_log": dict(self.delta_log),
            "kernel_resolved": dict(self.kernel_resolved),
            "executor": {
                "feature_memo_hits": self.feature_memo_hits,
                "feature_memo_misses": self.feature_memo_misses,
                "parallel_verifications": self.parallel_verifications,
                "sequential_verifications": self.sequential_verifications,
                "pipelined_plans": self.pipelined_plans,
                "pipeline_replans": self.pipeline_replans,
            },
        }


@dataclass
class _Task:
    """One submitted query travelling from :meth:`submit` to the driver."""

    query: LabeledGraph
    mode: str
    future: Future
    session: SessionStats | None
    #: tenant queue this task is scheduled under (session name or "default")
    tenant: str = DEFAULT_TENANT
    #: effective deadline in seconds (None = never expires)
    timeout: float | None = None
    #: expiry timer, armed before the task enters the scheduler
    timer: threading.Timer | None = None
    #: slot-release latch, owned by :meth:`FairScheduler.finish`
    finalized: bool = False


class ServiceSession:
    """A named accounting scope over a shared service (context-managed).

    Sessions do not partition the engine — the cache, window and shard
    state are deliberately shared so one tenant's cached queries speed up
    another's (the iGQ premise) — they partition the *accounting*: each
    session sees its own query counts, hit rates and timings in
    :meth:`GraphQueryService.stats`.
    """

    def __init__(self, service: "GraphQueryService", stats: SessionStats) -> None:
        self._service = service
        self.stats = stats

    @property
    def name(self) -> str:
        """The session's label (as shown in service reports)."""
        return self.stats.name

    def submit(
        self,
        query: LabeledGraph,
        mode: str | None = None,
        *,
        timeout: float | None = None,
        block: bool = True,
    ) -> Future:
        """Enqueue a query under this session's accounting and QoS tenant."""
        return self._service.submit(
            query, mode, session=self.stats, timeout=timeout, block=block
        )

    def query(self, query: LabeledGraph, mode: str | None = None) -> IGQQueryResult:
        """Process one query synchronously under this session."""
        return self.submit(query, mode).result()

    def stream(
        self, queries: Iterable, mode: str | None = None, max_in_flight: int | None = None
    ) -> Iterator[IGQQueryResult]:
        """Ordered streaming execution under this session's accounting."""
        return self._service.stream(
            queries, mode, max_in_flight=max_in_flight, session=self.stats
        )

    def __enter__(self) -> "ServiceSession":
        return self

    def __exit__(self, *exc_info) -> None:
        """Sessions hold no resources; closing is purely syntactic."""

    def __repr__(self) -> str:
        return f"<ServiceSession {self.stats.name!r} queries={self.stats.queries}>"


class GraphQueryService:
    """Session façade over one iGQ engine (see module docstring).

    Parameters
    ----------
    method:
        The base filter-then-verify method to wrap.  Alternatively pass a
        ready-made engine via ``engine=`` (the service then *owns* it:
        closing the service closes the engine).
    config:
        The :class:`~repro.core.config.EngineConfig` describing the engine
        and its execution machinery; defaults to ``EngineConfig()``.  A
        config with ``mode="mixed"`` makes per-call ``mode=`` mandatory.
    database:
        Dataset to index on :meth:`open`.  May be omitted when the method
        (or engine) already carries a built index.
    max_in_flight:
        Per-tenant backpressure bound: the maximum number of
        submitted-but-unresolved queries of one tenant; :meth:`submit`
        blocks once it is reached.  Overrides
        ``config.service.default_max_in_flight`` (tenants with an explicit
        ``max_in_flight`` in :class:`~repro.core.config.ServiceConfig` keep
        their own quota).
    """

    def __init__(
        self,
        method: SubgraphQueryMethod | None = None,
        config: EngineConfig | None = None,
        *,
        engine: IGQ | None = None,
        database: GraphDatabase | None = None,
        max_in_flight: int | None = None,
    ) -> None:
        if (method is None) == (engine is None):
            raise ConfigError(
                "pass exactly one of method= (with an optional config) or "
                "engine= (a prebuilt IGQ/ShardedIGQ)"
            )
        if max_in_flight is not None and max_in_flight < 1:
            raise ConfigError(
                f"max_in_flight={max_in_flight!r} is not valid; expected an integer >= 1"
            )
        if engine is not None:
            if config is not None:
                raise ConfigError(
                    "engine= already carries its configuration; drop config="
                )
            self.engine = engine
        else:
            self.engine = IGQ.from_config(method, config)
        self.config = self.engine.config
        service_config = self.config.service
        if max_in_flight is not None:
            service_config = dataclass_replace(
                service_config, default_max_in_flight=max_in_flight
            )
        self.service_config = service_config
        self.max_in_flight = service_config.default_max_in_flight
        self._database = database
        self._executor: BatchExecutor | None = None
        self._scheduler = FairScheduler(service_config)
        self._driver: threading.Thread | None = None
        self._pending: deque[_Task] = deque()
        self._inflight = 0
        self._opened = False
        self._closed = False
        self._error: BaseException | None = None
        self._state_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.totals = SessionStats(name="total")
        self._sessions: dict[str, SessionStats] = {}
        self._session_counter = itertools.count(1)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open(self) -> "GraphQueryService":
        """Build/attach the dataset index and start the execution driver."""
        with self._state_lock:
            if self._opened and not self._closed:
                return self
            if self._closed:
                raise ServiceClosed("a closed service cannot be reopened; create a new one")
            if self.engine.database is None:
                if self._database is not None:
                    self.engine.build_index(self._database)
                elif self.engine.method.database is not None:
                    self.engine.attach_prebuilt()
                else:
                    raise ServiceClosed(
                        "no dataset to serve: pass database= to the service or "
                        "build the method's index before opening"
                    )
            self._executor = BatchExecutor(self.engine, config=self.config.batch)
            self._driver = threading.Thread(
                target=self._drive, name="graph-query-service", daemon=True
            )
            self._opened = True
        self._driver.start()
        return self

    def close(self) -> None:
        """Drain submitted work, then shut every worker pool down (idempotent).

        Queries already submitted are completed (their futures resolve);
        afterwards the batch executor's verification pool and the engine's
        shard worker pools are terminated and joined.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            started = self._driver is not None
        # Closing the scheduler rejects new submissions; the driver keeps
        # dequeuing (drain mode ignores rate limits) until every queue is
        # empty, then its task source sees CLOSED and ends the stream.
        self._scheduler.close()
        if started:
            self._driver.join()
            self._executor.close()
        # Fail anything left queued (a service that was never opened, or a
        # driver that died before draining).
        while True:
            task = self._scheduler.next(block=False)
            if task is None or task is CLOSED:
                break
            self._finalize(task)
            try:
                task.future.set_exception(ServiceClosed("service closed"))
            except InvalidStateError:
                pass
        self.engine.close()

    @property
    def is_open(self) -> bool:
        """True between a successful :meth:`open` and :meth:`close`."""
        return self._opened and not self._closed and self._error is None

    def __enter__(self) -> "GraphQueryService":
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The front door
    # ------------------------------------------------------------------
    def submit(
        self,
        query: LabeledGraph,
        mode: str | None = None,
        *,
        session: SessionStats | None = None,
        timeout: float | None = None,
        block: bool = True,
    ) -> Future:
        """Enqueue one query; returns a future resolving to its result.

        Within a tenant, queries execute strictly in submission order; the
        fair scheduler interleaves *across* tenants (weighted deficit
        round-robin), so a single-tenant service behaves exactly like the
        original FIFO driver.  Blocks while the tenant's ``max_in_flight``
        submissions are outstanding — per-tenant backpressure —
        or, with ``block=False``, raises
        :class:`~repro.service.scheduler.AdmissionError` instead (what the
        network server turns into an ``overloaded`` response).

        ``timeout`` (defaulting to ``config.service.default_timeout_seconds``)
        expires the submission with :class:`QueryTimeout`; ``Future.cancel()``
        on a not-yet-started submission removes it from the queue.
        """
        mode = self._resolve_mode(mode)
        if timeout is not None and timeout <= 0:
            raise ConfigError(
                f"timeout={timeout!r} is not valid; expected a number > 0"
            )
        if not self.is_open:
            if self._error is not None:
                raise ServiceClosed("the service driver failed") from self._error
            raise ServiceClosed("the service is not open; use it as a context manager")
        tenant = session.name if session is not None else DEFAULT_TENANT
        effective_timeout = (
            timeout if timeout is not None
            else self.service_config.default_timeout_seconds
        )
        future: Future = Future()
        task = _Task(
            query=query,
            mode=mode,
            future=future,
            session=session,
            tenant=tenant,
            timeout=effective_timeout,
        )
        # Arm the expiry timer before the task can be dequeued, so the
        # driver always observes a fully-formed task.  The deadline covers
        # admission waiting too: a submission stuck behind its tenant's
        # quota can expire while still blocked here.
        if effective_timeout is not None:
            task.timer = threading.Timer(effective_timeout, self._expire, (task,))
            task.timer.daemon = True
            task.timer.start()
        try:
            # The scheduler atomically checks closed-ness with the enqueue:
            # a task either lands in a queue the driver is still draining,
            # or the submission fails fast — never enqueued and orphaned.
            self._scheduler.submit(task, block=block)
        except SchedulerClosed:
            if task.timer is not None:
                task.timer.cancel()
            if self._error is not None:
                raise ServiceClosed("the service driver failed") from self._error
            raise ServiceClosed(
                "the service closed while the submission waited"
            ) from None
        except BaseException:
            if task.timer is not None:
                task.timer.cancel()
            raise
        future.add_done_callback(lambda done_future: self._on_done(task, done_future))
        return future

    def query(
        self, query: LabeledGraph, mode: str | None = None
    ) -> IGQQueryResult:
        """Process one query synchronously (submit + wait).

        The single endpoint for both query types: ``mode="subgraph"`` asks
        which dataset graphs *contain* the query, ``mode="supergraph"``
        which are *contained in* it; omitted, the engine's configured mode
        applies.
        """
        return self.submit(query, mode).result()

    def stream(
        self,
        queries: Iterable,
        mode: str | None = None,
        *,
        max_in_flight: int | None = None,
        session: SessionStats | None = None,
    ) -> Iterator[IGQQueryResult]:
        """Pipe an iterable of queries through; yield results in order.

        Items are query graphs or ``(query, mode)`` pairs (mixed streams).
        At most ``max_in_flight`` queries are outstanding at once — the
        streaming backpressure bound — while the executor plans ahead and
        verifies on its pool within that window.
        """
        limit = max_in_flight if max_in_flight is not None else self.max_in_flight
        if limit < 1:
            raise ConfigError(
                f"max_in_flight={limit!r} is not valid; expected an integer >= 1"
            )
        window: deque[Future] = deque()
        for item in queries:
            if isinstance(item, tuple):
                item_query, item_mode = item
            else:
                item_query, item_mode = item, mode
            while len(window) >= limit:
                yield window.popleft().result()
            window.append(self.submit(item_query, item_mode, session=session))
        while window:
            yield window.popleft().result()

    def run(
        self, queries: Iterable, mode: str | None = None
    ) -> list[IGQQueryResult]:
        """Convenience: :meth:`stream` collected into a list."""
        return list(self.stream(queries, mode))

    def _resolve_mode(self, mode: str | None) -> str:
        if mode is None:
            if self.engine.mode == MIXED_MODE:
                raise ValueError(
                    "this service runs a mixed-mode engine: pass "
                    "mode='subgraph' or mode='supergraph' per query"
                )
            return self.engine.mode
        validate_query_mode(mode)
        if self.engine.mode not in (mode, MIXED_MODE):
            raise ValueError(
                f"this service serves {self.engine.mode!r} queries; configure "
                f"EngineConfig(mode='mixed') to dispatch both types"
            )
        return mode

    # ------------------------------------------------------------------
    # Sessions and introspection
    # ------------------------------------------------------------------
    def session(self, name: str | None = None, *, exist_ok: bool = False) -> ServiceSession:
        """Open a named accounting scope sharing this service's engine.

        The session's name is also its *tenant* identity: submissions made
        through it are scheduled on that tenant's queue with the weight,
        quota and rate limit :class:`~repro.core.config.ServiceConfig`
        assigns.  ``exist_ok=True`` returns the existing scope instead of
        raising (what the network server uses — every connection of a
        tenant shares one accounting scope).
        """
        with self._stats_lock:
            if name is None:
                name = f"session-{next(self._session_counter)}"
            if name in self._sessions:
                if exist_ok:
                    return ServiceSession(self, self._sessions[name])
                raise ValueError(f"session {name!r} already exists")
            stats = SessionStats(name=name)
            self._sessions[name] = stats
        return ServiceSession(self, stats)

    def scheduler_snapshot(self) -> dict:
        """Per-tenant queue depth, in-flight count and QoS knobs."""
        return self._scheduler.snapshot()

    def stats(self) -> ServiceReport:
        """A structured snapshot of cache, executor and session state."""
        engine = self.engine
        shard_balance = (
            engine.shard_balance()
            if hasattr(engine, "shard_balance")
            else [len(engine.cache)]
        )
        executor_stats = self._executor.stats if self._executor is not None else None
        shard_stats = (
            engine.shard_stats() if hasattr(engine, "shard_stats") else None
        )
        with self._stats_lock:
            totals = dataclass_replace(self.totals)
            sessions = {
                name: dataclass_replace(stats) for name, stats in self._sessions.items()
            }
        return ServiceReport(
            config=self.config.to_dict(),
            totals=totals,
            sessions=sessions,
            cache_size=len(engine.cache),
            cache_capacity=engine.maintenance.cache_size,
            queries_seen=engine.cache.query_counter,
            shards=getattr(engine, "num_shards", 1),
            shard_backend=getattr(engine, "shard_backend", "inline"),
            shard_balance=shard_balance,
            feature_memo_hits=executor_stats.feature_memo_hits if executor_stats else 0,
            feature_memo_misses=executor_stats.feature_memo_misses if executor_stats else 0,
            parallel_verifications=(
                executor_stats.parallel_verifications if executor_stats else 0
            ),
            sequential_verifications=(
                executor_stats.sequential_verifications if executor_stats else 0
            ),
            pipelined_plans=executor_stats.pipelined_plans if executor_stats else 0,
            pipeline_replans=executor_stats.pipeline_replans if executor_stats else 0,
            shard_probe_load=(
                shard_stats["probe_load"] if shard_stats else [0] * len(shard_balance)
            ),
            replica_counts=(
                shard_stats["replica_counts"]
                if shard_stats
                else [0] * len(shard_balance)
            ),
            replicas_live=shard_stats["replicas_live"] if shard_stats else 0,
            moves_applied=shard_stats["moves_applied"] if shard_stats else 0,
            delta_log=(
                shard_stats["delta_log"]
                if shard_stats
                else {
                    "length": 0,
                    "version": 0,
                    "floor_version": 0,
                    "records_folded": 0,
                    "bytes_reclaimed": 0,
                }
            ),
            kernel_resolved={
                "configured": self.config.verifier.kernel,
                "parent": engine.method.verifier.resolved_kernel_name(),
                "workers": dict(executor_stats.worker_kernels) if executor_stats else {},
                "shards": (
                    dict(shard_stats["worker_kernels"]) if shard_stats else {}
                ),
            },
        )

    def reset_engine_stats(self) -> None:
        """Zero the engine's hot-key/rebalance counters (if it has any).

        Useful at workload phase changes: replication and placement stay as
        they are, but future hotness decisions start from a clean slate.
        Session accounting is untouched — it belongs to the service layer.
        """
        if hasattr(self.engine, "reset_stats"):
            self.engine.reset_stats()

    # ------------------------------------------------------------------
    # Driver internals
    # ------------------------------------------------------------------
    def _drive(self) -> None:
        """Single driver thread: feed the executor, resolve futures in order."""
        try:
            for result in self._executor.run_stream(self._task_source()):
                if result is ABORTED:
                    self._resolve_aborted()
                else:
                    self._resolve(result)
        except BaseException as exc:  # noqa: BLE001 - must reach the futures
            self._fail(exc)

    def _task_source(self) -> Iterator:
        """Yield executor stream items dequeued by the fair scheduler.

        The executor asks for the next item *before* completing the one in
        flight (that is what lets it plan ahead); a caller waiting on the
        in-flight future may never submit again, so when no task is
        dispatchable while something is in flight this yields :data:`DRAIN`,
        telling the executor to finish and emit the pending query instead of
        blocking.  Each dispatched item carries ``future.done`` as its abort
        hook — a query that times out between dispatch and execution is
        skipped by the executor instead of burning a verification.
        """
        while True:
            if self._inflight:
                task = self._scheduler.next(block=False)
                if task is None:
                    yield DRAIN
                    continue
            else:
                task = self._scheduler.next(block=True)
            if task is CLOSED:
                return
            try:
                started = task.future.set_running_or_notify_cancel()
            except InvalidStateError:
                # The expiry timer beat the dispatch; the future already
                # carries QueryTimeout.
                started = False
            if not started:
                # Cancelled or expired before execution; hand its slot back.
                self._finalize(task)
                continue
            self._pending.append(task)
            self._inflight += 1
            yield (task.query, task.mode, task.future.done)

    def _resolve(self, result: IGQQueryResult) -> None:
        task = self._pending.popleft()
        self._inflight -= 1
        with self._stats_lock:
            supergraph = task.mode == SUPERGRAPH_MODE
            self.totals.record(result, supergraph)
            if task.session is not None:
                task.session.record(result, supergraph)
        self._finalize(task)
        try:
            task.future.set_result(result)
        except InvalidStateError:
            # Expired mid-execution: the engine state advanced (and was
            # accounted above), but the caller already saw QueryTimeout.
            pass

    def _resolve_aborted(self) -> None:
        """The executor skipped the head-of-line task (its future was done)."""
        task = self._pending.popleft()
        self._inflight -= 1
        self._finalize(task)

    def _finalize(self, task: _Task) -> None:
        """Release the task's expiry timer and tenant slot (idempotent)."""
        if task.timer is not None:
            task.timer.cancel()
        self._scheduler.finish(task)

    def _expire(self, task: _Task) -> None:
        """Timer callback: the task's deadline passed."""
        removed = self._scheduler.discard(task)
        try:
            task.future.set_exception(
                QueryTimeout(
                    f"query {task.query.name!r} timed out after {task.timeout}s"
                )
            )
        except InvalidStateError:
            # Resolved or cancelled concurrently — nothing expired.
            pass
        if removed:
            self._finalize(task)

    def _on_done(self, task: _Task, future: Future) -> None:
        """Future done-callback: reclaim the queue slot of a cancellation."""
        if not future.cancelled():
            return
        if self._scheduler.discard(task):
            self._finalize(task)

    def _fail(self, exc: BaseException) -> None:
        """Driver died: surface the error on every outstanding future."""
        # Publish the error before closing the scheduler: a submitter that
        # races past is_open either lands its task in a queue this drain
        # still empties, or SchedulerClosed makes its submit() raise — it
        # can never be enqueued and orphaned.
        with self._state_lock:
            self._error = exc
        self._scheduler.close()
        while self._pending:
            task = self._pending.popleft()
            self._inflight -= 1
            self._finalize(task)
            try:
                task.future.set_exception(exc)
            except InvalidStateError:
                pass
        while True:
            task = self._scheduler.next(block=False)
            if task is None or task is CLOSED:
                break
            self._finalize(task)
            try:
                task.future.set_exception(exc)
            except InvalidStateError:
                pass

    def __repr__(self) -> str:
        state = "open" if self.is_open else ("closed" if self._closed else "new")
        return (
            f"<GraphQueryService {state} engine={self.engine.name!r} "
            f"{self.config.describe()}>"
        )
