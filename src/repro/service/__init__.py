"""Service layer: the session façade over the iGQ engine.

:class:`GraphQueryService` is the intended public entry point for
applications — one context-managed object owning engine construction
(from a typed :class:`~repro.core.config.EngineConfig`), dataset indexing,
worker-pool lifecycle, a single ``query()`` endpoint serving subgraph *and*
supergraph queries, futures-based submission with bounded backpressure, and
structured introspection (:class:`ServiceReport`).
"""

from .service import (
    GraphQueryService,
    ServiceClosed,
    ServiceReport,
    ServiceSession,
    SessionStats,
)

__all__ = [
    "GraphQueryService",
    "ServiceClosed",
    "ServiceReport",
    "ServiceSession",
    "SessionStats",
]
