"""Service layer: the session façade over the iGQ engine.

:class:`GraphQueryService` is the intended public entry point for
applications — one context-managed object owning engine construction
(from a typed :class:`~repro.core.config.EngineConfig`), dataset indexing,
worker-pool lifecycle, a single ``query()`` endpoint serving subgraph *and*
supergraph queries, futures-based submission with bounded backpressure, and
structured introspection (:class:`ServiceReport`).
"""

from .client import ServiceClient, connect
from .scheduler import AdmissionError, FairScheduler
from .server import ServiceServer, serve
from .service import (
    GraphQueryService,
    QueryTimeout,
    ServiceClosed,
    ServiceReport,
    ServiceSession,
    SessionStats,
)

__all__ = [
    "GraphQueryService",
    "QueryTimeout",
    "ServiceClosed",
    "AdmissionError",
    "FairScheduler",
    "ServiceReport",
    "ServiceSession",
    "SessionStats",
    "ServiceServer",
    "ServiceClient",
    "serve",
    "connect",
]
