"""Locate, build and load the native VF2 kernel (`_ckernel.c`).

The native backend must never be a hard dependency: the engine has to keep
working on hosts with no C compiler, no prebuilt extension and no writable
cache directory, and a worker process on a different host than its parent
must be free to fall back independently.  This module therefore resolves
the shared object through a chain of progressively weaker options and
reports plain unavailability (``None``) when every link fails:

1. **Installed extension** — ``setup.py`` builds ``_ckernel.c`` as an
   *optional* extension module next to this file.  An extension module is
   an ordinary shared object, so its exported C symbols are consumed
   directly through :mod:`ctypes` (the module body is a stub; nothing is
   imported).
2. **Runtime compile cache** — under the legacy editable install (or a
   plain checkout) no extension is ever built, so the loader compiles the
   C source itself with ``cc -O3 -shared -fPIC`` into a per-user cache
   directory.  The artifact name is keyed on a hash of the C source, the
   platform and the ABI version, so editing ``_ckernel.c`` (or upgrading
   the repo) can never pick up a stale binary, and concurrent builders
   (e.g. a freshly spawned worker pool) race benignly through an atomic
   rename.
3. **Fallback** — anything failing above (no compiler, read-only home,
   unloadable artifact, ABI mismatch) disables the backend for this
   process; callers then resolve ``kernel="native"`` to ``"bigint"``.

Setting ``REPRO_DISABLE_NATIVE=1`` in the environment forces option 3 —
the switch the test suite and CI use to keep the pure-Python path honest.
The variable is inherited by worker processes, so a forced-fallback run is
forced everywhere.
"""

from __future__ import annotations

import ctypes
import hashlib
import importlib.machinery
import os
import subprocess
import sysconfig
from pathlib import Path

__all__ = [
    "ABI_VERSION",
    "kernel",
    "native_kernel_available",
    "native_disabled",
    "native_kernel_path",
    "reset_for_testing",
]

#: must match CK_ABI_VERSION in _ckernel.c; the loader refuses mismatches
ABI_VERSION = 1

_SOURCE = Path(__file__).with_name("_ckernel.c")

#: resolved state: ``False`` = not resolved yet, ``None`` = unavailable
_kernel = False
_kernel_path: Path | None = None


def native_disabled() -> bool:
    """True when ``REPRO_DISABLE_NATIVE`` forces the pure-Python fallback."""
    return os.environ.get("REPRO_DISABLE_NATIVE", "").strip() not in ("", "0")


def _installed_extension() -> Path | None:
    """The setuptools-built extension module next to the source, if any."""
    for suffix in importlib.machinery.EXTENSION_SUFFIXES:
        path = _SOURCE.with_name("_ckernel" + suffix)
        if path.is_file():
            return path
    return None


def _cache_dir() -> Path:
    base = os.environ.get("XDG_CACHE_HOME", "").strip()
    if not base:
        base = os.path.join(os.path.expanduser("~"), ".cache")
    return Path(base) / "repro-ckernel"


def _source_key(source: bytes) -> str:
    """Cache key covering everything that can invalidate a built artifact."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(source)
    digest.update(sysconfig.get_platform().encode())
    digest.update(str(ABI_VERSION).encode())
    return digest.hexdigest()


def _compile_cached() -> Path:
    """Compile the C source into the user cache (once per source hash).

    Concurrent callers (a worker pool spawning on a cold cache) may compile
    in parallel; each writes to a private temporary name and the final
    ``os.replace`` is atomic, so every racer ends up loading an identical,
    fully written artifact.
    """
    source = _SOURCE.read_bytes()
    out = _cache_dir() / f"_ckernel-{_source_key(source)}.so"
    if out.is_file():
        return out
    out.parent.mkdir(parents=True, exist_ok=True)
    compiler = os.environ.get("CC", "").strip() or "cc"
    scratch = out.with_name(f"{out.stem}.{os.getpid()}.tmp")
    try:
        subprocess.run(
            [compiler, "-O3", "-shared", "-fPIC", "-o", str(scratch), str(_SOURCE)],
            check=True,
            capture_output=True,
            timeout=120,
        )
        os.replace(scratch, out)
    finally:
        if scratch.exists():  # pragma: no cover - failed-compile cleanup
            try:
                scratch.unlink()
            except OSError:
                pass
    return out


def _configure(library: ctypes.CDLL) -> ctypes.CDLL | None:
    """Typedef the entry points; reject artifacts of a different ABI."""
    library.ck_abi_version.restype = ctypes.c_int64
    library.ck_abi_version.argtypes = ()
    if library.ck_abi_version() != ABI_VERSION:
        return None
    fn = library.ck_has_embedding
    fn.restype = ctypes.c_int64
    # (ck_target*, ck_plan*, step_labels*, region*) — passed as raw
    # addresses; the Python-side structures live in
    # repro.isomorphism.compiled (NativeTarget / native plan arrays).
    fn.argtypes = (ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p)
    return library


def kernel():
    """The configured :class:`ctypes.CDLL`, or ``None`` when unavailable.

    Resolution happens once per process and is cached, including the
    negative outcome — a host without a compiler must not retry the build
    on every verification call.
    """
    global _kernel, _kernel_path
    if _kernel is not False:
        return _kernel
    _kernel = None
    _kernel_path = None
    if native_disabled():
        return None
    try:
        path = _installed_extension()
        if path is None:
            path = _compile_cached()
        library = _configure(ctypes.CDLL(str(path)))
        if library is not None:
            _kernel = library
            _kernel_path = path
    except Exception:  # noqa: BLE001 - any failure means "unavailable"
        _kernel = None
    return _kernel


def native_kernel_available() -> bool:
    """True if the native kernel backend can run in this process."""
    return kernel() is not None


def native_kernel_path() -> Path | None:
    """Where the loaded shared object came from (diagnostics; ``None`` if
    the native backend is unavailable)."""
    kernel()
    return _kernel_path


def reset_for_testing() -> None:
    """Forget the cached resolution so tests can re-drive the loader.

    Production code never calls this: per-process resolution is stable by
    design (a worker that failed to load the kernel stays on bigint for
    its lifetime and reports so — see ``kernel_resolved`` in service
    stats).
    """
    global _kernel, _kernel_path
    _kernel = False
    _kernel_path = None
