"""Compiled verification fast path: bitset-based VF2 kernel.

The verification stage dominates filter-then-verify query processing, and the
dict-based :class:`~repro.isomorphism.vf2.VF2Matcher` rebuilds all of its
state — target label histogram, matching order, adjacency bookkeeping — for
every ``(query, candidate graph)`` pair.  Almost all of that state is a
property of *one* side of the pair:

* :class:`CompiledTarget` captures everything the kernel needs about a
  dataset graph — a dense vertex id space (reusing
  :class:`~repro.graphs.bitset.GraphIdSpace`, generalised here from graph ids
  to vertex ids), neighbour bitsets, label-partitioned neighbour bitsets,
  degree arrays, the label histogram and per-label degree signatures.  It is
  built once per graph and cached on the
  :class:`~repro.graphs.database.GraphDatabase`, so the cost is amortised
  over every query that ever verifies against the graph.
* :class:`CompiledQueryPlan` captures everything that depends only on the
  pattern — a connectivity-aware static matching order plus, per step, the
  positions of the already-matched pattern neighbours and the look-ahead
  neighbour count.  It is computed **once per query** and reused across all
  candidates of the batch (and, for supergraph queries where the dataset
  graphs play the pattern role, cached per dataset graph on the database).

The kernel itself (:func:`compiled_has_embedding`) explores the same
non-induced VF2 state space as :class:`VF2Matcher` — the test suite
cross-validates the two against each other and against ``networkx`` — but
its candidate generation is pure ``int`` bitmask intersection: the images of
the matched pattern neighbours contribute their label-partitioned adjacency
masks, the intersection is stripped of used vertices with one ``& ~used``,
and feasibility reduces to an array lookup plus a ``bit_count``.

:func:`signature_prereject` is the shared early-fail check (vertex/edge
counts, label-histogram dominance, per-label degree-signature dominance);
it rejects most non-matching candidates before any search starts and is
also applied by the :class:`~repro.isomorphism.verifier.Verifier` on the
non-compiled path.

**Region-masked matching** — :func:`compiled_has_embedding` optionally takes
a ``vertex_mask`` (an ``int`` bitmask over the target's
:class:`VertexIdSpace`) restricting candidate generation to the masked
vertices.  A masked run answers "does the pattern embed with its image
entirely inside the mask?", which for a vertex-induced region is exactly the
question of matching against the materialised region subgraph — Grapes'
component-restricted verification uses it to test query regions against the
*whole-graph* compiled target instead of building a subgraph per candidate
pair.  :func:`masked_components` and :func:`masked_edge_count` supply the
component decomposition and edge counts of a masked region without ever
materialising it.
"""

from __future__ import annotations

from collections.abc import Hashable

from ..graphs.bitset import VertexIdSpace, iter_bits
from ..graphs.graph import LabeledGraph

__all__ = [
    "CompiledTarget",
    "CompiledQueryPlan",
    "compile_target",
    "compile_query_plan",
    "compiled_has_embedding",
    "masked_components",
    "masked_edge_count",
    "signature_prereject",
    "degree_signature_dominates",
]


def degree_signature_dominates(
    pattern_degrees: dict[Hashable, list[int]],
    target_degrees: dict[Hashable, list[int]],
) -> bool:
    """Hall-style degree-signature check, per label.

    A pattern vertex of label ``L`` and degree ``d`` can only map to a target
    vertex of label ``L`` with degree ``>= d``; because that compatibility
    relation is a threshold on sorted degrees, a label class admits an
    injective assignment exactly when the k-th largest pattern degree is
    bounded by the k-th largest target degree for every ``k``.  Both inputs
    map labels to descending degree lists.
    """
    for label, p_degrees in pattern_degrees.items():
        t_degrees = target_degrees.get(label)
        if t_degrees is None or len(t_degrees) < len(p_degrees):
            return False
        for p_degree, t_degree in zip(p_degrees, t_degrees):
            if p_degree > t_degree:
                return False
    return True


def _label_degree_lists(graph: LabeledGraph) -> dict[Hashable, list[int]]:
    """Per-label descending degree lists of ``graph``."""
    by_label: dict[Hashable, list[int]] = {}
    for vertex in graph.vertices():
        by_label.setdefault(graph.label(vertex), []).append(graph.degree(vertex))
    for degrees in by_label.values():
        degrees.sort(reverse=True)
    return by_label


def signature_prereject(pattern: LabeledGraph, target: LabeledGraph) -> bool:
    """True if cheap invariants already prove ``pattern ⊄ target``.

    Checks vertex/edge counts, label-histogram dominance and the per-label
    degree-signature condition — all necessary for a (non-induced or
    induced) subgraph isomorphism, so a ``True`` here is always safe to
    report as "no match" without running a matcher.
    """
    if pattern.num_vertices > target.num_vertices:
        return True
    if pattern.num_edges > target.num_edges:
        return True
    target_hist = target.label_histogram()
    for label, count in pattern.label_histogram().items():
        if target_hist.get(label, 0) < count:
            return True
    return not degree_signature_dominates(
        _label_degree_lists(pattern), _label_degree_lists(target)
    )


class CompiledTarget:
    """Precompiled verification-side representation of one graph.

    All per-vertex state lives in arrays indexed by a dense vertex id
    (assigned by a frozen :class:`GraphIdSpace` over the vertex ids), and all
    neighbourhood state is stored as ``int`` bitmasks over that id space.
    The source graph is kept for fallback paths (Ullmann, induced semantics)
    and must not be mutated after compilation.
    """

    __slots__ = (
        "graph",
        "space",
        "num_vertices",
        "num_edges",
        "labels",
        "degrees",
        "adjacency_masks",
        "label_adjacency_masks",
        "label_masks",
        "label_histogram",
        "label_degrees",
    )

    def __init__(self, graph: LabeledGraph) -> None:
        self.graph = graph
        space = VertexIdSpace(graph.vertices())
        self.space = space
        n = len(space)
        self.num_vertices = n
        self.num_edges = graph.num_edges
        labels = [graph.label(space.id_at(index)) for index in range(n)]
        self.labels = labels

        adjacency = [0] * n
        label_adjacency: list[dict[Hashable, int]] = [{} for _ in range(n)]
        position = space.position
        for u, v in graph.edges():
            pu, pv = position(u), position(v)
            bu, bv = 1 << pu, 1 << pv
            adjacency[pu] |= bv
            adjacency[pv] |= bu
            lu, lv = labels[pu], labels[pv]
            by_label = label_adjacency[pu]
            by_label[lv] = by_label.get(lv, 0) | bv
            by_label = label_adjacency[pv]
            by_label[lu] = by_label.get(lu, 0) | bu
        self.adjacency_masks = adjacency
        self.label_adjacency_masks = label_adjacency
        self.degrees = [mask.bit_count() for mask in adjacency]

        label_masks: dict[Hashable, int] = {}
        label_histogram: dict[Hashable, int] = {}
        label_degrees: dict[Hashable, list[int]] = {}
        for index, label in enumerate(labels):
            label_masks[label] = label_masks.get(label, 0) | (1 << index)
            label_histogram[label] = label_histogram.get(label, 0) + 1
            label_degrees.setdefault(label, []).append(self.degrees[index])
        for degrees in label_degrees.values():
            degrees.sort(reverse=True)
        self.label_masks = label_masks
        self.label_histogram = label_histogram
        self.label_degrees = label_degrees

    def __repr__(self) -> str:
        return (
            f"<CompiledTarget |V|={self.num_vertices} |E|={self.num_edges} "
            f"labels={len(self.label_masks)}>"
        )


class CompiledQueryPlan:
    """Precompiled pattern-side matching plan, reusable across candidates.

    ``steps`` holds one ``(label, degree, anchors, lookahead)`` tuple per
    matching-order position: ``anchors`` are the order positions of the
    pattern vertex's already-matched neighbours (empty exactly when the order
    restarts on a new connected component) and ``lookahead`` is the number of
    its pattern neighbours matched *later*, which the kernel compares against
    the candidate's count of unused target neighbours.

    The order is computed from the pattern alone (highest degree first, then
    grow connectivity-first preferring the most anchored frontier vertex), so
    the plan of a dataset graph can be cached and reused across every
    supergraph query it is ever verified against.
    """

    __slots__ = (
        "pattern",
        "num_vertices",
        "num_edges",
        "steps",
        "label_histogram",
        "label_degrees",
    )

    def __init__(self, pattern: LabeledGraph) -> None:
        self.pattern = pattern
        self.num_vertices = pattern.num_vertices
        self.num_edges = pattern.num_edges
        self.label_histogram = dict(pattern.label_histogram())
        self.label_degrees = _label_degree_lists(pattern)

        order = self._matching_order(pattern)
        order_position = {vertex: index for index, vertex in enumerate(order)}
        steps = []
        for index, vertex in enumerate(order):
            anchors = []
            lookahead = 0
            for neighbor in pattern.neighbors(vertex):
                neighbor_position = order_position[neighbor]
                if neighbor_position < index:
                    anchors.append(neighbor_position)
                else:
                    lookahead += 1
            steps.append(
                (pattern.label(vertex), pattern.degree(vertex), tuple(anchors), lookahead)
            )
        self.steps = steps

    @staticmethod
    def _matching_order(pattern: LabeledGraph) -> list[Hashable]:
        constraint = {
            vertex: (-pattern.degree(vertex), repr(vertex))
            for vertex in pattern.vertices()
        }
        order: list[Hashable] = []
        placed: set = set()
        remaining = set(pattern.vertices())
        placed_neighbors = {vertex: 0 for vertex in remaining}

        def place(vertex: Hashable) -> None:
            order.append(vertex)
            placed.add(vertex)
            remaining.discard(vertex)
            for neighbor in pattern.neighbors(vertex):
                if neighbor not in placed:
                    placed_neighbors[neighbor] += 1

        while remaining:
            start = min(remaining, key=constraint.__getitem__)
            place(start)
            frontier = {
                neighbor
                for neighbor in pattern.neighbors(start)
                if neighbor not in placed
            }
            while frontier:
                nxt = min(
                    frontier,
                    key=lambda v: (-placed_neighbors[v],) + constraint[v],
                )
                place(nxt)
                frontier.discard(nxt)
                frontier.update(
                    neighbor
                    for neighbor in pattern.neighbors(nxt)
                    if neighbor not in placed
                )
        return order

    def prereject(self, target: CompiledTarget) -> bool:
        """Early-fail pre-check against a compiled target (no search)."""
        if self.num_vertices > target.num_vertices:
            return True
        if self.num_edges > target.num_edges:
            return True
        target_hist = target.label_histogram
        for label, count in self.label_histogram.items():
            if target_hist.get(label, 0) < count:
                return True
        return not degree_signature_dominates(self.label_degrees, target.label_degrees)

    def __repr__(self) -> str:
        return f"<CompiledQueryPlan |V|={self.num_vertices} |E|={self.num_edges}>"


def compile_target(graph: LabeledGraph) -> CompiledTarget:
    """Compile ``graph`` into its verification-side representation."""
    return CompiledTarget(graph)


def compile_query_plan(pattern: LabeledGraph) -> CompiledQueryPlan:
    """Compile ``pattern`` into a reusable matching plan."""
    return CompiledQueryPlan(pattern)


def masked_components(target: CompiledTarget, vertex_mask: int) -> list[int]:
    """Connected components of ``target`` restricted to ``vertex_mask``.

    Each component is returned as an ``int`` bitmask over the target's
    vertex id space.  The components are ordered exactly like
    :func:`repro.graphs.traversal.connected_components` orders them on the
    materialised induced subgraph — decreasing size, ties broken by the
    ``repr`` of the smallest vertex — so a caller replacing a
    subgraph-then-decompose loop keeps visiting the same components in the
    same order (Grapes relies on this for byte-identical test accounting).
    """
    adjacency = target.adjacency_masks
    components: list[int] = []
    remaining = vertex_mask
    while remaining:
        frontier = remaining & -remaining
        component = 0
        while frontier:
            component |= frontier
            reached = 0
            for position in iter_bits(frontier):
                reached |= adjacency[position]
            frontier = reached & vertex_mask & ~component
        components.append(component)
        remaining &= ~component
    if len(components) > 1:
        space = target.space

        def sort_key(component: int):
            smallest = min(repr(space.id_at(position)) for position in iter_bits(component))
            # Mirror connected_components' `repr(sorted(map(repr, comp))[:1])`
            # tie-break key exactly: sorted(...)[:1] == [min(...)].
            return (-component.bit_count(), repr([smallest]))

        components.sort(key=sort_key)
    return components


def masked_edge_count(target: CompiledTarget, vertex_mask: int) -> int:
    """Number of target edges with both endpoints inside ``vertex_mask``.

    Equals ``graph.subgraph(vertices).num_edges`` for the vertex set the
    mask denotes, computed by popcount instead of materialisation.
    """
    adjacency = target.adjacency_masks
    total = 0
    for position in iter_bits(vertex_mask):
        total += (adjacency[position] & vertex_mask).bit_count()
    return total // 2


def compiled_has_embedding(
    plan: CompiledQueryPlan, target: CompiledTarget, vertex_mask: int | None = None
) -> bool:
    """True if the plan's pattern has a (non-induced) embedding in ``target``.

    Semantics are identical to ``VF2Matcher(pattern, target).has_match()``;
    the search differs only in representation.  The kernel is recursion-free:
    one explicit stack frame per matching-order position, each holding the
    not-yet-tried candidate mask at that depth.

    With a ``vertex_mask``, candidate generation is additionally restricted
    to the masked target vertices, so the kernel answers whether an embedding
    exists whose image lies entirely inside the mask — equivalently, whether
    the pattern embeds in the vertex-induced subgraph the mask denotes.  The
    whole-graph signature pre-reject stays sound (the region's invariants are
    dominated by the full target's), and look-ahead feasibility counts only
    the masked neighbours.
    """
    if plan.num_vertices == 0:
        return True
    if vertex_mask is not None and vertex_mask.bit_count() < plan.num_vertices:
        return False
    if plan.prereject(target):
        return False
    region = -1 if vertex_mask is None else vertex_mask

    steps = plan.steps
    depth_count = len(steps)
    label_masks = target.label_masks
    label_adjacency = target.label_adjacency_masks
    adjacency = target.adjacency_masks
    degrees = target.degrees

    #: dense target index chosen at each depth, and its single-bit mask
    images = [0] * depth_count
    image_bits = [0] * depth_count
    #: candidates not yet tried at each depth
    pending = [0] * depth_count
    used = 0
    depth = 0
    advancing = True

    while True:
        label, min_degree, anchors, lookahead = steps[depth]
        if advancing:
            if anchors:
                candidates = label_adjacency[images[anchors[0]]].get(label, 0)
                for anchor in anchors[1:]:
                    if not candidates:
                        break
                    candidates &= label_adjacency[images[anchor]].get(label, 0)
            else:
                candidates = label_masks.get(label, 0)
            candidates &= region & ~used
        else:
            candidates = pending[depth]

        advanced = False
        while candidates:
            low = candidates & -candidates
            candidates ^= low
            vertex = low.bit_length() - 1
            if degrees[vertex] < min_degree:
                continue
            if lookahead and (adjacency[vertex] & region & ~used).bit_count() < lookahead:
                continue
            # Accept this candidate and descend.
            pending[depth] = candidates
            images[depth] = vertex
            image_bits[depth] = low
            used |= low
            depth += 1
            if depth == depth_count:
                return True
            advanced = True
            break
        if advanced:
            advancing = True
            continue
        # Exhausted this depth: backtrack.
        depth -= 1
        if depth < 0:
            return False
        used ^= image_bits[depth]
        advancing = False
