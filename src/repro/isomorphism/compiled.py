"""Compiled verification fast path: bitset-based VF2 kernel.

The verification stage dominates filter-then-verify query processing, and the
dict-based :class:`~repro.isomorphism.vf2.VF2Matcher` rebuilds all of its
state — target label histogram, matching order, adjacency bookkeeping — for
every ``(query, candidate graph)`` pair.  Almost all of that state is a
property of *one* side of the pair:

* :class:`CompiledTarget` captures everything the kernel needs about a
  dataset graph — a dense vertex id space (reusing
  :class:`~repro.graphs.bitset.GraphIdSpace`, generalised here from graph ids
  to vertex ids), neighbour bitsets, label-partitioned neighbour bitsets,
  degree arrays, the label histogram and per-label degree signatures.  It is
  built once per graph and cached on the
  :class:`~repro.graphs.database.GraphDatabase`, so the cost is amortised
  over every query that ever verifies against the graph.
* :class:`CompiledQueryPlan` captures everything that depends only on the
  pattern — a connectivity-aware static matching order plus, per step, the
  positions of the already-matched pattern neighbours and the look-ahead
  neighbour count.  It is computed **once per query** and reused across all
  candidates of the batch (and, for supergraph queries where the dataset
  graphs play the pattern role, cached per dataset graph on the database).

The kernel itself (:func:`compiled_has_embedding`) explores the same
non-induced VF2 state space as :class:`VF2Matcher` — the test suite
cross-validates the two against each other and against ``networkx`` — but
its candidate generation is pure ``int`` bitmask intersection: the images of
the matched pattern neighbours contribute their label-partitioned adjacency
masks, the intersection is stripped of used vertices with one ``& ~used``,
and feasibility reduces to an array lookup plus a ``bit_count``.

:func:`signature_prereject` is the shared early-fail check (vertex/edge
counts, label-histogram dominance, per-label degree-signature dominance);
it rejects most non-matching candidates before any search starts and is
also applied by the :class:`~repro.isomorphism.verifier.Verifier` on the
non-compiled path.

**Region-masked matching** — :func:`compiled_has_embedding` optionally takes
a ``vertex_mask`` (an ``int`` bitmask over the target's
:class:`VertexIdSpace`) restricting candidate generation to the masked
vertices.  A masked run answers "does the pattern embed with its image
entirely inside the mask?", which for a vertex-induced region is exactly the
question of matching against the materialised region subgraph — Grapes'
component-restricted verification uses it to test query regions against the
*whole-graph* compiled target instead of building a subgraph per candidate
pair.  :func:`masked_components` and :func:`masked_edge_count` supply the
component decomposition and edge counts of a masked region without ever
materialising it.

**Kernel backends** — the kernel exists in two interchangeable
implementations selected by the ``kernel`` argument (threaded through
:class:`~repro.core.config.VerifierConfig.kernel`):

* ``"bigint"`` — the original pure-Python arbitrary-precision ``int``
  bitmask loop above; always available.
* ``"numpy"`` — the same search over ``uint64`` word arrays
  (:class:`TargetArrays`, built lazily per target and cached), with
  candidate generation, degree filtering and look-ahead popcounts done as
  vectorised array operations per depth instead of per candidate.  Requires
  numpy (import-guarded) on a little-endian platform; forcing it when
  unavailable silently falls back to ``"bigint"``.
* ``"native"`` — the same search compiled to machine code: a hand-written
  C inner loop (``_ckernel.c``) over the ``uint64`` word-array layout,
  driven through ctypes (:class:`NativeTarget` marshals the target once,
  the plan marshals once, each call passes two struct pointers).  Built as
  an *optional* setuptools extension or compiled on demand into a user
  cache by :mod:`repro.isomorphism._ckernel_loader`; falls back to
  ``"bigint"`` when neither works (no compiler, ``REPRO_DISABLE_NATIVE``).
* ``"auto"`` (default) — prefers ``"native"`` whenever the C kernel is
  loadable.  Otherwise a small cost model: per-pair search runs
  ``"numpy"`` only for targets with at least
  :data:`NUMPY_KERNEL_MIN_VERTICES` vertices and ``"bigint"`` below it,
  while the *batch-level* vectorisation (the
  :class:`DatasetSignatures` pre-reject) is always enabled.  Measured on
  CPython, the per-pair numpy crossover lies beyond every graph size we
  can construct — CPython's bigint bitops already run at C loops over
  words, and the VF2 step granularity is too fine to amortise array-op
  dispatch — so without the C kernel the default threshold effectively
  keeps per-pair matching on ``"bigint"`` and the batched pre-reject is
  where the arrays pay (see docs/performance.md).

All backends explore the *identical* DFS tree (same matching order, same
ascending candidate order, same feasibility predicates evaluated against
the same ``used`` state), so answers — and therefore every downstream
accounting and cache decision — are byte-identical by construction.  The
test suite cross-validates them against each other and against networkx.

:class:`DatasetSignatures` is the batched form of the signature pre-check:
the per-graph invariants of a whole dataset stacked into aligned arrays so
one vectorised pass rejects every non-matching candidate of a query before
any per-pair matching starts (both query directions).
"""

from __future__ import annotations

import ctypes
import sys
import weakref
from array import array
from collections.abc import Hashable, Sequence

from ..graphs.bitset import VertexIdSpace, iter_bits
from ..graphs.graph import LabeledGraph
from . import _ckernel_loader
from ._ckernel_loader import native_kernel_available

try:  # pragma: no cover - exercised indirectly via numpy_kernel_available()
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI images
    _np = None

__all__ = [
    "CompiledTarget",
    "CompiledQueryPlan",
    "DatasetSignatures",
    "NativeTarget",
    "TargetArrays",
    "KERNELS",
    "NUMPY_KERNEL_MIN_VERTICES",
    "compile_target",
    "compile_query_plan",
    "compiled_has_embedding",
    "masked_components",
    "masked_edge_count",
    "native_kernel_available",
    "numpy_kernel_available",
    "resolve_kernel",
    "signature_prereject",
    "degree_signature_dominates",
]

#: accepted values of the ``kernel`` flag, in documentation order
KERNELS = ("auto", "bigint", "numpy", "native")

#: ``"auto"`` cost-model crossover: targets with at least this many vertices
#: run the per-pair numpy kernel.  Benchmarked on CPython (sparse and dense
#: random graphs, 40 to 20 000 vertices, positive and exhaustive-negative
#: searches) the bigint kernel won at every size — its big-int bitops are
#: C loops over words with none of numpy's per-call dispatch overhead — so
#: the default threshold is set beyond realistic dataset graphs and
#: ``"auto"`` keeps per-pair matching on ``"bigint"``.  The vectorised win
#: "auto" *does* enable is the batched :class:`DatasetSignatures`
#: pre-reject; ``kernel="numpy"`` still forces the array kernel per pair
#: (A/B validation, alternative interpreters).
NUMPY_KERNEL_MIN_VERTICES = 1 << 20


def numpy_kernel_available() -> bool:
    """True if the numpy ``uint64`` kernel backend can run on this host.

    Requires numpy with ``bitwise_count`` (numpy >= 2.0) on a little-endian
    platform — the word arrays are built by viewing the little-endian byte
    serialisation of the Python bigint masks, so bit ``i`` of the bitmask is
    bit ``i % 64`` of word ``i // 64`` only when the native byte order is
    little-endian.  When this returns ``False`` every ``kernel=`` request
    resolves to ``"bigint"``.
    """
    return _np is not None and sys.byteorder == "little" and hasattr(_np, "bitwise_count")


def resolve_kernel(kernel: str, target: "CompiledTarget | None" = None) -> str:
    """Resolve a ``kernel`` request to the backend actually run for ``target``.

    ``"bigint"`` always resolves to itself; ``"native"`` resolves to the C
    kernel when :func:`native_kernel_available` (bigint fallback otherwise);
    ``"numpy"`` resolves to the numpy backend when
    :func:`numpy_kernel_available` (bigint fallback otherwise); ``"auto"``
    prefers the native kernel whenever it is loadable and otherwise applies
    the :data:`NUMPY_KERNEL_MIN_VERTICES` cost model per target graph.

    Resolution is per *process* (a worker without a C compiler resolves
    ``"native"`` to ``"bigint"`` locally, regardless of its parent) and, for
    the ``"auto"`` cost model, per target.  ``target`` may be omitted for
    reporting purposes — the omitted-target answer equals the per-target
    answer for every sub-threshold (i.e. realistic) target.

    Hot-path callers go through :meth:`CompiledTarget.resolved_kernel`,
    which memoises this answer per target; call this directly only off the
    per-pair path.
    """
    if kernel == "bigint":
        return "bigint"
    if kernel == "native":
        return "native" if native_kernel_available() else "bigint"
    if kernel == "numpy":
        return "numpy" if numpy_kernel_available() else "bigint"
    if kernel != "auto":
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
    if native_kernel_available():
        return "native"
    if (
        target is not None
        and numpy_kernel_available()
        and target.num_vertices >= NUMPY_KERNEL_MIN_VERTICES
    ):
        return "numpy"
    return "bigint"


def degree_signature_dominates(
    pattern_degrees: dict[Hashable, list[int]],
    target_degrees: dict[Hashable, list[int]],
) -> bool:
    """Hall-style degree-signature check, per label.

    A pattern vertex of label ``L`` and degree ``d`` can only map to a target
    vertex of label ``L`` with degree ``>= d``; because that compatibility
    relation is a threshold on sorted degrees, a label class admits an
    injective assignment exactly when the k-th largest pattern degree is
    bounded by the k-th largest target degree for every ``k``.  Both inputs
    map labels to descending degree lists.
    """
    for label, p_degrees in pattern_degrees.items():
        t_degrees = target_degrees.get(label)
        if t_degrees is None or len(t_degrees) < len(p_degrees):
            return False
        for p_degree, t_degree in zip(p_degrees, t_degrees):
            if p_degree > t_degree:
                return False
    return True


def _label_degree_lists(graph: LabeledGraph) -> dict[Hashable, list[int]]:
    """Per-label descending degree lists of ``graph``."""
    by_label: dict[Hashable, list[int]] = {}
    for vertex in graph.vertices():
        by_label.setdefault(graph.label(vertex), []).append(graph.degree(vertex))
    for degrees in by_label.values():
        degrees.sort(reverse=True)
    return by_label


def signature_prereject(pattern: LabeledGraph, target: LabeledGraph) -> bool:
    """True if cheap invariants already prove ``pattern ⊄ target``.

    Checks vertex/edge counts, label-histogram dominance and the per-label
    degree-signature condition — all necessary for a (non-induced or
    induced) subgraph isomorphism, so a ``True`` here is always safe to
    report as "no match" without running a matcher.
    """
    if pattern.num_vertices > target.num_vertices:
        return True
    if pattern.num_edges > target.num_edges:
        return True
    target_hist = target.label_histogram()
    for label, count in pattern.label_histogram().items():
        if target_hist.get(label, 0) < count:
            return True
    return not degree_signature_dominates(
        _label_degree_lists(pattern), _label_degree_lists(target)
    )


class CompiledTarget:
    """Precompiled verification-side representation of one graph.

    All per-vertex state lives in arrays indexed by a dense vertex id
    (assigned by a frozen :class:`GraphIdSpace` over the vertex ids), and all
    neighbourhood state is stored as ``int`` bitmasks over that id space.
    The source graph is kept for fallback paths (Ullmann, induced semantics)
    and must not be mutated after compilation.
    """

    __slots__ = (
        "graph",
        "space",
        "num_vertices",
        "num_edges",
        "labels",
        "degrees",
        "adjacency_masks",
        "label_adjacency_masks",
        "label_masks",
        "label_histogram",
        "label_degrees",
        "_arrays",
        "_native",
        "_kernel_cache",
    )

    #: slots never pickled: per-process caches, rebuilt lazily after unpickling
    _TRANSIENT_SLOTS = ("_arrays", "_native", "_kernel_cache")

    def __init__(self, graph: LabeledGraph) -> None:
        self.graph = graph
        self._arrays = None
        self._native = None
        self._kernel_cache = {}
        space = VertexIdSpace(graph.vertices())
        self.space = space
        n = len(space)
        self.num_vertices = n
        self.num_edges = graph.num_edges
        labels = [graph.label(space.id_at(index)) for index in range(n)]
        self.labels = labels

        adjacency = [0] * n
        label_adjacency: list[dict[Hashable, int]] = [{} for _ in range(n)]
        position = space.position
        for u, v in graph.edges():
            pu, pv = position(u), position(v)
            bu, bv = 1 << pu, 1 << pv
            adjacency[pu] |= bv
            adjacency[pv] |= bu
            lu, lv = labels[pu], labels[pv]
            by_label = label_adjacency[pu]
            by_label[lv] = by_label.get(lv, 0) | bv
            by_label = label_adjacency[pv]
            by_label[lu] = by_label.get(lu, 0) | bu
        self.adjacency_masks = adjacency
        self.label_adjacency_masks = label_adjacency
        self.degrees = [mask.bit_count() for mask in adjacency]

        label_masks: dict[Hashable, int] = {}
        label_histogram: dict[Hashable, int] = {}
        label_degrees: dict[Hashable, list[int]] = {}
        for index, label in enumerate(labels):
            label_masks[label] = label_masks.get(label, 0) | (1 << index)
            label_histogram[label] = label_histogram.get(label, 0) + 1
            label_degrees.setdefault(label, []).append(self.degrees[index])
        for degrees in label_degrees.values():
            degrees.sort(reverse=True)
        self.label_masks = label_masks
        self.label_histogram = label_histogram
        self.label_degrees = label_degrees

    def arrays(self) -> "TargetArrays":
        """The numpy ``uint64`` word-array form of this target.

        Built lazily on first request by the numpy kernel backend and cached
        for every later verification against this target; callers must first
        check :func:`numpy_kernel_available`.  The cache is dropped when the
        target is pickled (snapshots ship the compact bigint form; workers
        rebuild arrays on demand).
        """
        arrays = self._arrays
        if arrays is None:
            arrays = TargetArrays(self)
            self._arrays = arrays
        return arrays

    def native(self) -> "NativeTarget":
        """The ctypes word-array form of this target for the C kernel.

        Built lazily on first request by the native backend and cached for
        every later verification against this target; callers must first
        check :func:`native_kernel_available`.  Like :meth:`arrays`, the
        cache is dropped when the target is pickled (ctypes buffers hold
        raw addresses that are meaningless in another process; workers
        rebuild on demand).
        """
        native = self._native
        if native is None:
            native = NativeTarget(self)
            self._native = native
        return native

    def resolved_kernel(self, kernel: str) -> str:
        """Memoised :func:`resolve_kernel` for this target.

        Kernel resolution is invariant per ``(process, target, kernel)``
        triple — availability of the native/numpy backends never changes
        within a process, and the ``"auto"`` cost model depends only on the
        target — so the hot per-pair path reduces dispatch to one dict hit.
        The memo is dropped on pickling together with the other per-process
        caches: a worker re-resolves locally, because the native library
        present in the parent may be unloadable in a fresh process.
        """
        cache = self._kernel_cache
        resolved = cache.get(kernel)
        if resolved is None:
            resolved = resolve_kernel(kernel, self)
            cache[kernel] = resolved
        return resolved

    def __getstate__(self):
        """Pickle every slot except the per-process caches."""
        transient = self._TRANSIENT_SLOTS
        return {
            slot: getattr(self, slot) for slot in self.__slots__ if slot not in transient
        }

    def __setstate__(self, state) -> None:
        """Restore pickled slots; array/native forms are rebuilt lazily."""
        for slot, value in state.items():
            setattr(self, slot, value)
        self._arrays = None
        self._native = None
        self._kernel_cache = {}

    def __repr__(self) -> str:
        return (
            f"<CompiledTarget |V|={self.num_vertices} |E|={self.num_edges} "
            f"labels={len(self.label_masks)}>"
        )


class CompiledQueryPlan:
    """Precompiled pattern-side matching plan, reusable across candidates.

    ``steps`` holds one ``(label, degree, anchors, lookahead)`` tuple per
    matching-order position: ``anchors`` are the order positions of the
    pattern vertex's already-matched neighbours (empty exactly when the order
    restarts on a new connected component) and ``lookahead`` is the number of
    its pattern neighbours matched *later*, which the kernel compares against
    the candidate's count of unused target neighbours.

    The order is computed from the pattern alone (highest degree first, then
    grow connectivity-first preferring the most anchored frontier vertex), so
    the plan of a dataset graph can be cached and reused across every
    supergraph query it is ever verified against.
    """

    __slots__ = (
        "pattern",
        "num_vertices",
        "num_edges",
        "steps",
        "label_histogram",
        "label_degrees",
        "_native",
        # weak-referenceable so NativeTarget's per-plan step-label memo can
        # drop entries automatically when a plan dies
        "__weakref__",
    )

    def __init__(self, pattern: LabeledGraph) -> None:
        self.pattern = pattern
        self._native = None
        self.num_vertices = pattern.num_vertices
        self.num_edges = pattern.num_edges
        self.label_histogram = dict(pattern.label_histogram())
        self.label_degrees = _label_degree_lists(pattern)

        order = self._matching_order(pattern)
        order_position = {vertex: index for index, vertex in enumerate(order)}
        steps = []
        for index, vertex in enumerate(order):
            anchors = []
            lookahead = 0
            for neighbor in pattern.neighbors(vertex):
                neighbor_position = order_position[neighbor]
                if neighbor_position < index:
                    anchors.append(neighbor_position)
                else:
                    lookahead += 1
            steps.append(
                (pattern.label(vertex), pattern.degree(vertex), tuple(anchors), lookahead)
            )
        self.steps = steps

    @staticmethod
    def _matching_order(pattern: LabeledGraph) -> list[Hashable]:
        constraint = {
            vertex: (-pattern.degree(vertex), repr(vertex))
            for vertex in pattern.vertices()
        }
        order: list[Hashable] = []
        placed: set = set()
        remaining = set(pattern.vertices())
        placed_neighbors = {vertex: 0 for vertex in remaining}

        def place(vertex: Hashable) -> None:
            order.append(vertex)
            placed.add(vertex)
            remaining.discard(vertex)
            for neighbor in pattern.neighbors(vertex):
                if neighbor not in placed:
                    placed_neighbors[neighbor] += 1

        while remaining:
            start = min(remaining, key=constraint.__getitem__)
            place(start)
            frontier = {
                neighbor
                for neighbor in pattern.neighbors(start)
                if neighbor not in placed
            }
            while frontier:
                nxt = min(
                    frontier,
                    key=lambda v: (-placed_neighbors[v],) + constraint[v],
                )
                place(nxt)
                frontier.discard(nxt)
                frontier.update(
                    neighbor
                    for neighbor in pattern.neighbors(nxt)
                    if neighbor not in placed
                )
        return order

    def prereject(self, target: CompiledTarget) -> bool:
        """Early-fail pre-check against a compiled target (no search)."""
        if self.num_vertices > target.num_vertices:
            return True
        if self.num_edges > target.num_edges:
            return True
        target_hist = target.label_histogram
        for label, count in self.label_histogram.items():
            if target_hist.get(label, 0) < count:
                return True
        return not degree_signature_dominates(self.label_degrees, target.label_degrees)

    def native(self):
        """The plan's ``ck_plan`` struct for the C kernel (built once, cached).

        Flattens the per-step degrees, look-aheads and anchor positions into
        contiguous int64 arrays and returns the ctypes struct pointing at
        them; the backing buffers are kept alive alongside the struct.  Like
        the target-side caches the result is dropped on pickling (raw
        addresses do not survive a process hop).
        """
        native = self._native
        if native is None:
            steps = self.steps
            min_degrees = array("q", [step[1] for step in steps])
            lookaheads = array("q", [step[3] for step in steps])
            flat_anchors: list[int] = []
            offsets = [0]
            for _, _, anchors, _ in steps:
                flat_anchors.extend(anchors)
                offsets.append(len(flat_anchors))
            anchor_indptr = array("q", offsets)
            anchor_flat = array("q", flat_anchors)
            struct = _CkPlan(
                len(steps),
                min_degrees.buffer_info()[0],
                lookaheads.buffer_info()[0],
                anchor_indptr.buffer_info()[0],
                anchor_flat.buffer_info()[0],
            )
            native = (
                struct,
                ctypes.byref(struct),
                (min_degrees, lookaheads, anchor_indptr, anchor_flat),
            )
            self._native = native
        return native[0]

    def native_ref(self):
        """Reusable ``byref`` argument object for :meth:`native`'s struct."""
        native = self._native
        if native is None:
            self.native()
            native = self._native
        return native[1]

    def __getstate__(self):
        """Pickle every slot except the per-process native struct cache."""
        transient = ("_native", "__weakref__")
        return {
            slot: getattr(self, slot) for slot in self.__slots__ if slot not in transient
        }

    def __setstate__(self, state) -> None:
        """Restore pickled slots; the native struct is rebuilt lazily."""
        for slot, value in state.items():
            setattr(self, slot, value)
        self._native = None

    def __repr__(self) -> str:
        return f"<CompiledQueryPlan |V|={self.num_vertices} |E|={self.num_edges}>"


def compile_target(graph: LabeledGraph) -> CompiledTarget:
    """Compile ``graph`` into its verification-side representation."""
    return CompiledTarget(graph)


def compile_query_plan(pattern: LabeledGraph) -> CompiledQueryPlan:
    """Compile ``pattern`` into a reusable matching plan."""
    return CompiledQueryPlan(pattern)


def masked_components(target: CompiledTarget, vertex_mask: int) -> list[int]:
    """Connected components of ``target`` restricted to ``vertex_mask``.

    Each component is returned as an ``int`` bitmask over the target's
    vertex id space.  The components are ordered exactly like
    :func:`repro.graphs.traversal.connected_components` orders them on the
    materialised induced subgraph — decreasing size, ties broken by the
    ``repr`` of the smallest vertex — so a caller replacing a
    subgraph-then-decompose loop keeps visiting the same components in the
    same order (Grapes relies on this for byte-identical test accounting).
    """
    adjacency = target.adjacency_masks
    components: list[int] = []
    remaining = vertex_mask
    while remaining:
        frontier = remaining & -remaining
        component = 0
        while frontier:
            component |= frontier
            reached = 0
            for position in iter_bits(frontier):
                reached |= adjacency[position]
            frontier = reached & vertex_mask & ~component
        components.append(component)
        remaining &= ~component
    if len(components) > 1:
        space = target.space

        def sort_key(component: int):
            smallest = min(repr(space.id_at(position)) for position in iter_bits(component))
            # Mirror connected_components' `repr(sorted(map(repr, comp))[:1])`
            # tie-break key exactly: sorted(...)[:1] == [min(...)].
            return (-component.bit_count(), repr([smallest]))

        components.sort(key=sort_key)
    return components


def masked_edge_count(target: CompiledTarget, vertex_mask: int) -> int:
    """Number of target edges with both endpoints inside ``vertex_mask``.

    Equals ``graph.subgraph(vertices).num_edges`` for the vertex set the
    mask denotes, computed by popcount instead of materialisation.
    """
    adjacency = target.adjacency_masks
    total = 0
    for position in iter_bits(vertex_mask):
        total += (adjacency[position] & vertex_mask).bit_count()
    return total // 2


def compiled_has_embedding(
    plan: CompiledQueryPlan,
    target: CompiledTarget,
    vertex_mask: int | None = None,
    *,
    kernel: str = "auto",
    prechecked: bool = False,
) -> bool:
    """True if the plan's pattern has a (non-induced) embedding in ``target``.

    Semantics are identical to ``VF2Matcher(pattern, target).has_match()``;
    the search differs only in representation.  ``kernel`` selects the
    backend (see :data:`KERNELS` / :func:`resolve_kernel`); both backends
    explore the identical DFS tree, so the answer never depends on the
    choice.  ``prechecked=True`` skips the scalar signature pre-reject —
    callers pass it when a batched :class:`DatasetSignatures` pass has
    already cleared this pair (re-running the scalar check would only
    duplicate work; it can never flip the answer).

    With a ``vertex_mask``, candidate generation is additionally restricted
    to the masked target vertices, so the kernel answers whether an embedding
    exists whose image lies entirely inside the mask — equivalently, whether
    the pattern embeds in the vertex-induced subgraph the mask denotes.  The
    whole-graph signature pre-reject stays sound (the region's invariants are
    dominated by the full target's), and look-ahead feasibility counts only
    the masked neighbours.
    """
    if plan.num_vertices == 0:
        return True
    if vertex_mask is not None and vertex_mask.bit_count() < plan.num_vertices:
        return False
    if not prechecked and plan.prereject(target):
        return False
    resolved = target.resolved_kernel(kernel)
    if resolved == "native":
        return _native_has_embedding(plan, target, vertex_mask)
    if resolved == "numpy":
        return _numpy_has_embedding(plan, target, vertex_mask)
    return _bigint_has_embedding(plan, target, vertex_mask)


def _bigint_has_embedding(
    plan: CompiledQueryPlan, target: CompiledTarget, vertex_mask: int | None
) -> bool:
    """The pure-Python bigint-bitmask kernel backend.

    Recursion-free: one explicit stack frame per matching-order position,
    each holding the not-yet-tried candidate mask at that depth.  Candidates
    are tried in ascending dense-index order; degree and look-ahead
    feasibility are evaluated lazily per candidate.
    """
    region = -1 if vertex_mask is None else vertex_mask

    steps = plan.steps
    depth_count = len(steps)
    label_masks = target.label_masks
    label_adjacency = target.label_adjacency_masks
    adjacency = target.adjacency_masks
    degrees = target.degrees

    #: dense target index chosen at each depth, and its single-bit mask
    images = [0] * depth_count
    image_bits = [0] * depth_count
    #: candidates not yet tried at each depth
    pending = [0] * depth_count
    used = 0
    depth = 0
    advancing = True

    while True:
        label, min_degree, anchors, lookahead = steps[depth]
        if advancing:
            if anchors:
                candidates = label_adjacency[images[anchors[0]]].get(label, 0)
                for anchor in anchors[1:]:
                    if not candidates:
                        break
                    candidates &= label_adjacency[images[anchor]].get(label, 0)
            else:
                candidates = label_masks.get(label, 0)
            candidates &= region & ~used
        else:
            candidates = pending[depth]

        advanced = False
        while candidates:
            low = candidates & -candidates
            candidates ^= low
            vertex = low.bit_length() - 1
            if degrees[vertex] < min_degree:
                continue
            if lookahead and (adjacency[vertex] & region & ~used).bit_count() < lookahead:
                continue
            # Accept this candidate and descend.
            pending[depth] = candidates
            images[depth] = vertex
            image_bits[depth] = low
            used |= low
            depth += 1
            if depth == depth_count:
                return True
            advanced = True
            break
        if advanced:
            advancing = True
            continue
        # Exhausted this depth: backtrack.
        depth -= 1
        if depth < 0:
            return False
        used ^= image_bits[depth]
        advancing = False


# ----------------------------------------------------------------------
# numpy uint64 kernel backend
# ----------------------------------------------------------------------

if _np is not None:  # pragma: no branch
    #: single-bit uint64 constants, indexed by bit position within a word
    _BIT_WORDS = _np.uint64(1) << _np.arange(64, dtype=_np.uint64)
    _EMPTY_INDICES = _np.empty(0, dtype=_np.uint64)


def _mask_words(mask: int, num_words: int):
    """A Python bigint bitmask as a read-only ``(num_words,)`` uint64 array.

    Bit ``i`` of the mask becomes bit ``i % 64`` of word ``i // 64`` — exact
    on little-endian hosts, which :func:`numpy_kernel_available` guarantees.
    """
    return _np.frombuffer(mask.to_bytes(num_words * 8, "little"), dtype=_np.uint64)


class TargetArrays:
    """numpy array form of a :class:`CompiledTarget`.

    Carries what the vectorised kernel gathers per depth: ``adjacency`` is
    the ``(n, W)`` uint64 word matrix (row ``i`` = neighbour bitset of dense
    vertex ``i``, used for bit-test gathers and look-ahead popcounts),
    ``degrees`` the ``(n,)`` int64 degree array, ``label_members`` each
    label's ascending member-index array (unanchored candidate base), and
    ``label_csr`` each label's CSR-sliced adjacency — ``(indptr, flat)``
    where ``flat[indptr[v]:indptr[v + 1]]`` lists ``v``'s neighbours of that
    label in ascending order (anchored candidate base).  Built once per
    target via :meth:`CompiledTarget.arrays` and reused by every
    verification against it.
    """

    __slots__ = (
        "num_words",
        "degrees",
        "adjacency",
        "label_members",
        "label_csr",
    )

    def __init__(self, target: CompiledTarget) -> None:
        n = target.num_vertices
        num_words = max(1, (n + 63) // 64)
        self.num_words = num_words
        self.degrees = _np.asarray(target.degrees, dtype=_np.int64)
        adjacency = _np.empty((n, num_words), dtype=_np.uint64)
        for index, mask in enumerate(target.adjacency_masks):
            adjacency[index] = _mask_words(mask, num_words)
        self.adjacency = adjacency
        self.label_members = {
            label: _np.fromiter(iter_bits(mask), _np.int64).astype(_np.uint64)
            for label, mask in target.label_masks.items()
        }
        label_csr: dict[Hashable, tuple] = {}
        for label in target.label_masks:
            indptr = _np.zeros(n + 1, dtype=_np.int64)
            rows = []
            for index, by_label in enumerate(target.label_adjacency_masks):
                mask = by_label.get(label, 0)
                row = list(iter_bits(mask)) if mask else ()
                rows.append(row)
                indptr[index + 1] = indptr[index] + len(row)
            flat = _np.fromiter(
                (bit for row in rows for bit in row), _np.int64, count=int(indptr[-1])
            ).astype(_np.uint64)
            label_csr[label] = (indptr, flat)
        self.label_csr = label_csr


if _np is not None:  # pragma: no branch
    _U1 = _np.uint64(1)
    _U6 = _np.uint64(6)
    _U63 = _np.uint64(63)


def _numpy_has_embedding(
    plan: CompiledQueryPlan, target: CompiledTarget, vertex_mask: int | None
) -> bool:
    """The vectorised index-gather kernel backend.

    Explores the same DFS tree as :func:`_bigint_has_embedding` — identical
    matching order, identical ascending candidate order, identical degree
    and look-ahead predicates — but computes each depth's *entire* feasible
    candidate list in one vectorised pass on entry: the anchored (CSR slice)
    or label-member base list is narrowed by bit-test gathers into the
    adjacency/region/used word arrays, then by the degree array and the
    look-ahead popcount, all as whole-array operations over the candidate
    list (never over all ``n`` vertices).  Eager filtering is sound because
    the ``used`` set at depth ``d`` is invariant across every re-entry of
    that depth (deeper assignments are unwound first), so it sees exactly
    the state the bigint kernel's lazy per-candidate checks would see.
    """
    arrays = target.arrays()
    region = None if vertex_mask is None else _mask_words(vertex_mask, arrays.num_words)
    degrees = arrays.degrees
    adjacency = arrays.adjacency
    label_members = arrays.label_members
    label_csr = arrays.label_csr

    steps = plan.steps
    depth_count = len(steps)
    images = [0] * depth_count
    #: feasible candidate index array at each depth, and the try cursor
    pending: list = [None] * depth_count
    cursors = [0] * depth_count
    used = _np.zeros(arrays.num_words, dtype=_np.uint64)
    depth = 0
    advancing = True

    while True:
        label, min_degree, anchors, lookahead = steps[depth]
        if advancing:
            if anchors:
                csr = label_csr.get(label)
                if csr is None:
                    candidates = _EMPTY_INDICES
                else:
                    indptr, flat = csr
                    first = images[anchors[0]]
                    candidates = flat[indptr[first] : indptr[first + 1]]
                    for anchor in anchors[1:]:
                        if not candidates.size:
                            break
                        row = adjacency[images[anchor]]
                        hits = (row[candidates >> _U6] >> (candidates & _U63)) & _U1
                        candidates = candidates[hits != 0]
            else:
                candidates = label_members.get(label, _EMPTY_INDICES)
            if candidates.size and region is not None:
                hits = (region[candidates >> _U6] >> (candidates & _U63)) & _U1
                candidates = candidates[hits != 0]
            if candidates.size:
                hits = (used[candidates >> _U6] >> (candidates & _U63)) & _U1
                candidates = candidates[hits == 0]
            if min_degree and candidates.size:
                candidates = candidates[degrees[candidates] >= min_degree]
            if lookahead and candidates.size:
                # High bits of ~used beyond vertex n are harmless: adjacency
                # rows never set them, so the AND masks them out.
                free = ~used if region is None else region & ~used
                free_neighbors = _np.bitwise_count(adjacency[candidates] & free)
                candidates = candidates[free_neighbors.sum(axis=1) >= lookahead]
            pending[depth] = candidates
            cursors[depth] = 0
        else:
            candidates = pending[depth]
        cursor = cursors[depth]
        if cursor < candidates.size:
            vertex = int(candidates[cursor])
            cursors[depth] = cursor + 1
            images[depth] = vertex
            used[vertex >> 6] |= _BIT_WORDS[vertex & 63]
            depth += 1
            if depth == depth_count:
                return True
            advancing = True
        else:
            depth -= 1
            if depth < 0:
                return False
            vertex = images[depth]
            used[vertex >> 6] ^= _BIT_WORDS[vertex & 63]
            advancing = False


# ----------------------------------------------------------------------
# native C kernel backend
# ----------------------------------------------------------------------


class _CkTarget(ctypes.Structure):
    """ctypes mirror of ``ck_target`` in ``_ckernel.c`` (ABI v1)."""

    _fields_ = [
        ("n", ctypes.c_int64),
        ("num_words", ctypes.c_int64),
        ("num_labels", ctypes.c_int64),
        ("adjacency", ctypes.c_void_p),
        ("degrees", ctypes.c_void_p),
        ("label_members", ctypes.c_void_p),
        ("ladj_indptr", ctypes.c_void_p),
        ("ladj_labels", ctypes.c_void_p),
        ("ladj_words", ctypes.c_void_p),
    ]


class _CkPlan(ctypes.Structure):
    """ctypes mirror of ``ck_plan`` in ``_ckernel.c`` (ABI v1)."""

    _fields_ = [
        ("num_steps", ctypes.c_int64),
        ("min_degrees", ctypes.c_void_p),
        ("lookaheads", ctypes.c_void_p),
        ("anchor_indptr", ctypes.c_void_p),
        ("anchors", ctypes.c_void_p),
    ]


class NativeTarget:
    """ctypes word-array form of a :class:`CompiledTarget` for the C kernel.

    Serialises every bigint bitmask of the target into little-endian
    ``uint64`` word buffers once — ``adjacency`` as an ``(n, W)`` row-major
    block, ``label_members`` as one ``W``-word row per label id, and the
    label-partitioned adjacency as a CSR block whose entries per vertex are
    sorted by ascending label id (the order ``ck_label_row`` linear-scans).
    Labels are arbitrary hashables on the Python side, so ``label_ids``
    assigns them dense ints; per call the plan's step labels are mapped
    through it (``-1`` marks a label the target lacks — an empty candidate
    base, exactly the bigint kernel's ``.get(label, 0)``).

    ``struct`` is the ready-to-pass ``ck_target`` pointer block; the
    backing :mod:`array` buffers are pinned in ``_buffers`` for the
    lifetime of this object.  Built via :meth:`CompiledTarget.native` and
    cached there; never pickled.
    """

    __slots__ = (
        "num_words",
        "full_mask",
        "label_ids",
        "struct",
        "struct_ref",
        "_buffers",
        "_step_labels",
    )

    def __init__(self, target: CompiledTarget) -> None:
        n = target.num_vertices
        num_words = max(1, (n + 63) // 64)
        row_bytes = num_words * 8
        self.num_words = num_words
        self.full_mask = (1 << n) - 1
        label_ids = {label: index for index, label in enumerate(target.label_masks)}
        self.label_ids = label_ids

        adjacency = array("Q")
        adjacency.frombytes(
            b"".join(
                mask.to_bytes(row_bytes, "little") for mask in target.adjacency_masks
            )
        )
        degrees = array("q", target.degrees)
        members = array("Q")
        members.frombytes(
            b"".join(
                target.label_masks[label].to_bytes(row_bytes, "little")
                for label in label_ids
            )
        )

        offsets = [0] * (n + 1)
        entry_labels: list[int] = []
        entry_chunks: list[bytes] = []
        for position, by_label in enumerate(target.label_adjacency_masks):
            entries = sorted(
                (label_ids[label], mask) for label, mask in by_label.items()
            )
            offsets[position + 1] = offsets[position] + len(entries)
            for label_id, mask in entries:
                entry_labels.append(label_id)
                entry_chunks.append(mask.to_bytes(row_bytes, "little"))
        ladj_indptr = array("q", offsets)
        ladj_labels = array("q", entry_labels)
        ladj_words = array("Q")
        ladj_words.frombytes(b"".join(entry_chunks))

        # plan -> (step-label array, base address); weak keys so entries die
        # with their plan instead of pinning every plan ever verified here
        self._step_labels = weakref.WeakKeyDictionary()
        self._buffers = (
            adjacency,
            degrees,
            members,
            ladj_indptr,
            ladj_labels,
            ladj_words,
        )
        self.struct = _CkTarget(
            n,
            num_words,
            len(label_ids),
            adjacency.buffer_info()[0],
            degrees.buffer_info()[0],
            members.buffer_info()[0],
            ladj_indptr.buffer_info()[0],
            ladj_labels.buffer_info()[0],
            ladj_words.buffer_info()[0],
        )
        # byref argument objects are reusable; building one per call would
        # be measurable next to a microsecond-scale kernel entry
        self.struct_ref = ctypes.byref(self.struct)

    def step_labels_address(self, plan: "CompiledQueryPlan") -> int:
        """Base address of ``plan``'s step labels mapped into this target's
        label id space (``-1`` for labels the target lacks).

        The mapping is invariant per ``(plan, target)`` pair, so it is
        memoised — on the hot path (one query verified against many cached
        candidates, each candidate hit repeatedly across the batch) the
        per-call marshalling cost collapses to one dict hit.
        """
        cached = self._step_labels.get(plan)
        if cached is None:
            get = self.label_ids.get
            labels = array("q", [get(step[0], -1) for step in plan.steps])
            cached = (labels, labels.buffer_info()[0])
            self._step_labels[plan] = cached
        return cached[1]


def _native_has_embedding(
    plan: CompiledQueryPlan, target: CompiledTarget, vertex_mask: int | None
) -> bool:
    """The C kernel backend (``_ckernel.c`` driven through ctypes).

    The target and plan structs are prebuilt and cached (see
    :meth:`CompiledTarget.native` / :meth:`CompiledQueryPlan.native`), and
    the plan's step labels mapped into the target's label id space are
    memoised per pair (:meth:`NativeTarget.step_labels_address`); the only
    per-call marshalling left is serialising the region mask on masked
    runs.  Callers guarantee the library loaded (``resolved_kernel``
    returned ``"native"``).
    """
    library = _ckernel_loader.kernel()
    native_target = target.native()
    plan_ref = plan.native_ref()
    step_labels_address = native_target.step_labels_address(plan)
    region_address = None
    if vertex_mask is not None:
        region = array("Q")
        region.frombytes(
            (vertex_mask & native_target.full_mask).to_bytes(
                native_target.num_words * 8, "little"
            )
        )
        region_address = region.buffer_info()[0]
    result = library.ck_has_embedding(
        native_target.struct_ref,
        plan_ref,
        step_labels_address,
        region_address,
    )
    if result < 0:  # pragma: no cover - allocation failure inside the kernel
        raise MemoryError("native kernel scratch allocation failed")
    return bool(result)


# ----------------------------------------------------------------------
# Batched signature pre-reject
# ----------------------------------------------------------------------


class DatasetSignatures:
    """Stacked per-graph invariants for the vectorised batched pre-reject.

    Holds, aligned by a dense row per dataset graph: vertex/edge counts
    (int64 vectors), the label histogram as a ``(G, L)`` matrix over the
    dataset's label universe, and one descending per-label degree matrix per
    label, right-padded with ``-1`` for graphs with fewer vertices of that
    label.  :meth:`prereject_targets` / :meth:`prereject_patterns` evaluate
    :func:`signature_prereject` for *every* candidate of a query in a few
    whole-array comparisons — element-for-element the same boolean the
    scalar check returns, so answers and test accounting are unchanged.

    Built lazily (and invalidated on insert) by
    :meth:`repro.graphs.database.GraphDatabase.dataset_signatures`; requires
    :func:`numpy_kernel_available`.
    """

    __slots__ = ("_row", "_num_vertices", "_num_edges", "_labels", "_hist", "_degrees")

    def __init__(self, graphs: dict[Hashable, LabeledGraph]) -> None:
        ids = list(graphs)
        count = len(ids)
        self._row = {graph_id: row for row, graph_id in enumerate(ids)}
        self._num_vertices = _np.fromiter(
            (graphs[graph_id].num_vertices for graph_id in ids), _np.int64, count=count
        )
        self._num_edges = _np.fromiter(
            (graphs[graph_id].num_edges for graph_id in ids), _np.int64, count=count
        )
        degree_lists = [_label_degree_lists(graphs[graph_id]) for graph_id in ids]
        labels = sorted({label for lists in degree_lists for label in lists}, key=repr)
        self._labels = {label: column for column, label in enumerate(labels)}
        hist = _np.zeros((count, len(labels)), dtype=_np.int64)
        widths = {label: 0 for label in labels}
        for row, lists in enumerate(degree_lists):
            for label, degrees in lists.items():
                hist[row, self._labels[label]] = len(degrees)
                if len(degrees) > widths[label]:
                    widths[label] = len(degrees)
        self._hist = hist
        degree_matrices: dict[Hashable, object] = {}
        for label, width in widths.items():
            matrix = _np.full((count, width), -1, dtype=_np.int64)
            for row, lists in enumerate(degree_lists):
                degrees = lists.get(label)
                if degrees:
                    matrix[row, : len(degrees)] = degrees
            degree_matrices[label] = matrix
        self._degrees = degree_matrices

    def _rows(self, graph_ids: Sequence[Hashable]):
        row = self._row
        return _np.fromiter(
            (row[graph_id] for graph_id in graph_ids), _np.intp, count=len(graph_ids)
        )

    def prereject_targets(self, plan: CompiledQueryPlan, graph_ids: Sequence[Hashable]):
        """Batched pre-reject for a subgraph query (dataset graphs as targets).

        Returns a boolean array aligned with ``graph_ids``; entry ``i`` is
        exactly ``plan.prereject(compiled_target(graph_ids[i]))``.
        """
        rows = self._rows(graph_ids)
        reject = (self._num_vertices[rows] < plan.num_vertices) | (
            self._num_edges[rows] < plan.num_edges
        )
        for label, required in plan.label_histogram.items():
            column = self._labels.get(label)
            if column is None:
                reject[:] = True
                return reject
            reject |= self._hist[rows, column] < required
        for label, pattern_degrees in plan.label_degrees.items():
            matrix = self._degrees[label]
            needed = len(pattern_degrees)
            if needed > matrix.shape[1]:
                reject[:] = True
                return reject
            wanted = _np.asarray(pattern_degrees, dtype=_np.int64)
            # A -1 pad entry always compares below the (non-negative)
            # pattern degree, encoding "fewer target vertices than needed".
            reject |= (matrix[rows][:, :needed] < wanted).any(axis=1)
        return reject

    def prereject_patterns(self, target: CompiledTarget, graph_ids: Sequence[Hashable]):
        """Batched pre-reject for a supergraph query (dataset graphs as patterns).

        Returns a boolean array aligned with ``graph_ids``; entry ``i`` is
        exactly ``compiled_plan(graph_ids[i]).prereject(target)`` for the
        query compiled as the one shared target.
        """
        rows = self._rows(graph_ids)
        reject = (self._num_vertices[rows] > target.num_vertices) | (
            self._num_edges[rows] > target.num_edges
        )
        target_hist = _np.fromiter(
            (target.label_histogram.get(label, 0) for label in self._labels),
            _np.int64,
            count=len(self._labels),
        )
        reject |= (self._hist[rows] > target_hist).any(axis=1)
        for label, matrix in self._degrees.items():
            width = matrix.shape[1]
            target_degrees = target.label_degrees.get(label, ())
            padded = _np.full(width, -1, dtype=_np.int64)
            fill = min(width, len(target_degrees))
            padded[:fill] = target_degrees[:fill]
            # Pattern pad entries (-1) never exceed anything; pattern degrees
            # beyond the target's list compare against -1 and reject.
            reject |= (matrix[rows] > padded).any(axis=1)
        return reject
