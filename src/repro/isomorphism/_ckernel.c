/* Native inner loop of the compiled VF2 kernel.
 *
 * This file is a line-for-line transliteration of `_bigint_has_embedding`
 * (src/repro/isomorphism/compiled.py) from Python bigint bitmasks onto
 * uint64 word arrays: identical matching order, identical ascending
 * candidate order, identical degree / look-ahead / region predicates
 * evaluated against the identical `used` state — so the boolean it returns
 * is byte-identical to the bigint kernel on every (plan, target, mask)
 * triple, which is what the repository's A/B contract requires.
 *
 * The file is deliberately dependency-free C99 so it can be built two ways:
 *
 *   1. by setuptools as an optional extension module (setup.py defines
 *      CKERNEL_PYMODULE and links against Python for the no-op PyInit);
 *   2. by the runtime fallback loader (`_ckernel_loader.py`) with nothing
 *      but `cc -O3 -shared -fPIC` — no Python headers required; all entry
 *      points use a plain C ABI consumed through ctypes.
 *
 * Data layout (built once per target / per plan on the Python side, see
 * `NativeTarget` / the plan's `native_steps()` in compiled.py):
 *
 *   - adjacency:      n x num_words row-major uint64 neighbour bitsets;
 *   - label_members:  num_labels x num_words uint64 bitsets (the vertices
 *                     carrying each label — the unanchored candidate base);
 *   - ladj_*:         CSR label-partitioned adjacency: for vertex v the
 *                     entries [ladj_indptr[v], ladj_indptr[v+1]) name the
 *                     distinct labels of v's neighbourhood (ascending label
 *                     id) and each entry carries a num_words bitset of v's
 *                     neighbours with that label (the anchored candidate
 *                     base: candidates = AND of the anchors' rows);
 *   - step_labels:    the plan's per-step label mapped into the target's
 *                     label-id space (-1 when the target lacks the label);
 *   - region:         optional num_words vertex mask (NULL = unmasked).
 *
 * Bits at positions >= n in the last word are never set by any of the
 * above, so word-wise AND chains never need a trailing-word trim.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* The ABI version is checked by the loader after dlopen so a stale build
 * of an older layout can never be driven with new-layout pointers.  Bump
 * it whenever a struct or signature below changes. */
#define CK_ABI_VERSION 1

#if defined(_WIN32)
#define CK_EXPORT __declspec(dllexport)
#else
#define CK_EXPORT __attribute__((visibility("default")))
#endif

#if defined(__GNUC__) || defined(__clang__)
static inline int ck_ctz64(uint64_t word) { return __builtin_ctzll(word); }
static inline int ck_popcount64(uint64_t word) { return __builtin_popcountll(word); }
#else
static inline int ck_ctz64(uint64_t word) {
    int count = 0;
    while (!(word & 1u)) { word >>= 1; ++count; }
    return count;
}
static inline int ck_popcount64(uint64_t word) {
    int count = 0;
    while (word) { word &= word - 1; ++count; }
    return count;
}
#endif

typedef struct {
    int64_t n;              /* number of target vertices                  */
    int64_t num_words;      /* uint64 words per bitset row                */
    int64_t num_labels;     /* size of the target's label universe        */
    const uint64_t *adjacency;     /* n * num_words                       */
    const int64_t *degrees;        /* n                                   */
    const uint64_t *label_members; /* num_labels * num_words              */
    const int64_t *ladj_indptr;    /* n + 1 (entry offsets)               */
    const int64_t *ladj_labels;    /* ladj_indptr[n] label ids            */
    const uint64_t *ladj_words;    /* ladj_indptr[n] * num_words bitsets  */
} ck_target;

typedef struct {
    int64_t num_steps;
    const int64_t *min_degrees;    /* num_steps                           */
    const int64_t *lookaheads;     /* num_steps                           */
    const int64_t *anchor_indptr;  /* num_steps + 1                       */
    const int64_t *anchors;        /* anchor_indptr[num_steps] positions  */
} ck_plan;

CK_EXPORT int64_t ck_abi_version(void) { return CK_ABI_VERSION; }

/* Row of v's label-partitioned adjacency for `label`, or NULL when no
 * neighbour of v carries the label (the bigint `.get(label, 0)`). */
static inline const uint64_t *
ck_label_row(const ck_target *t, int64_t vertex, int64_t label)
{
    int64_t lo = t->ladj_indptr[vertex];
    int64_t hi = t->ladj_indptr[vertex + 1];
    for (int64_t k = lo; k < hi; ++k) {
        int64_t entry = t->ladj_labels[k];
        if (entry == label)
            return t->ladj_words + k * t->num_words;
        if (entry > label)  /* entries are ascending */
            break;
    }
    return NULL;
}

/* True iff the plan's pattern embeds into the target (image inside
 * `region` when region is non-NULL).  Returns 1 / 0, or -1 on allocation
 * failure (the Python wrapper raises MemoryError and never treats -1 as
 * an answer). */
CK_EXPORT int64_t
ck_has_embedding(const ck_target *t,
                 const ck_plan *p,
                 const int64_t *step_labels,
                 const uint64_t *region)
{
    const int64_t W = t->num_words;
    const int64_t depth_count = p->num_steps;

    /* Stack buffers cover every realistic plan/target; spill to malloc
     * beyond them.  Layout: pending masks (depth_count * W), used (W),
     * scratch candidate words are the pending row itself. */
    uint64_t stack_words[2048];
    int64_t stack_meta[256];
    uint64_t *words = stack_words;
    int64_t *meta = stack_meta;
    int64_t want_words = (depth_count + 1) * W;
    int64_t want_meta = 3 * depth_count;
    if (want_words > (int64_t)(sizeof(stack_words) / sizeof(uint64_t))) {
        words = (uint64_t *)malloc((size_t)want_words * sizeof(uint64_t));
        if (words == NULL)
            return -1;
    }
    if (want_meta > (int64_t)(sizeof(stack_meta) / sizeof(int64_t))) {
        meta = (int64_t *)malloc((size_t)want_meta * sizeof(int64_t));
        if (meta == NULL) {
            if (words != stack_words)
                free(words);
            return -1;
        }
    }
    uint64_t *pending = words;                     /* depth_count * W */
    uint64_t *used = words + depth_count * W;      /* W               */
    int64_t *images = meta;                        /* depth_count     */
    int64_t *image_words = meta + depth_count;     /* word index      */
    int64_t *image_bits = meta + 2 * depth_count;  /* bit index       */
    memset(used, 0, (size_t)W * sizeof(uint64_t));

    int64_t depth = 0;
    int advancing = 1;
    int64_t result = 0;

    for (;;) {
        const int64_t label = step_labels[depth];
        const int64_t min_degree = p->min_degrees[depth];
        const int64_t lookahead = p->lookaheads[depth];
        uint64_t *candidates = pending + depth * W;

        if (advancing) {
            const int64_t anchor_lo = p->anchor_indptr[depth];
            const int64_t anchor_hi = p->anchor_indptr[depth + 1];
            if (label < 0) {
                /* Label absent from the target: empty base. */
                memset(candidates, 0, (size_t)W * sizeof(uint64_t));
            } else if (anchor_lo < anchor_hi) {
                const uint64_t *row =
                    ck_label_row(t, images[p->anchors[anchor_lo]], label);
                if (row == NULL) {
                    memset(candidates, 0, (size_t)W * sizeof(uint64_t));
                } else {
                    memcpy(candidates, row, (size_t)W * sizeof(uint64_t));
                    for (int64_t a = anchor_lo + 1; a < anchor_hi; ++a) {
                        const uint64_t *other =
                            ck_label_row(t, images[p->anchors[a]], label);
                        if (other == NULL) {
                            memset(candidates, 0, (size_t)W * sizeof(uint64_t));
                            break;
                        }
                        uint64_t any = 0;
                        for (int64_t w = 0; w < W; ++w) {
                            candidates[w] &= other[w];
                            any |= candidates[w];
                        }
                        if (!any)
                            break;
                    }
                }
            } else {
                memcpy(candidates, t->label_members + label * W,
                       (size_t)W * sizeof(uint64_t));
            }
            if (region != NULL) {
                for (int64_t w = 0; w < W; ++w)
                    candidates[w] &= region[w] & ~used[w];
            } else {
                for (int64_t w = 0; w < W; ++w)
                    candidates[w] &= ~used[w];
            }
        }
        /* else: resume from the pending candidates stored at this depth. */

        int advanced = 0;
        for (int64_t w = 0; w < W && !advanced; ++w) {
            while (candidates[w]) {
                const uint64_t low = candidates[w] & (~candidates[w] + 1);
                const int bit = ck_ctz64(candidates[w]);
                candidates[w] ^= low;
                const int64_t vertex = (w << 6) + bit;
                if (t->degrees[vertex] < min_degree)
                    continue;
                if (lookahead) {
                    const uint64_t *adj_row = t->adjacency + vertex * W;
                    int64_t free_neighbors = 0;
                    if (region != NULL) {
                        for (int64_t v = 0; v < W; ++v)
                            free_neighbors += ck_popcount64(
                                adj_row[v] & region[v] & ~used[v]);
                    } else {
                        for (int64_t v = 0; v < W; ++v)
                            free_neighbors += ck_popcount64(adj_row[v] & ~used[v]);
                    }
                    if (free_neighbors < lookahead)
                        continue;
                }
                /* Accept this candidate and descend (the tried/skipped
                 * bits are already cleared in the pending row). */
                images[depth] = vertex;
                image_words[depth] = w;
                image_bits[depth] = bit;
                used[w] |= low;
                ++depth;
                if (depth == depth_count) {
                    result = 1;
                    goto done;
                }
                advanced = 1;
                break;
            }
        }
        if (advanced) {
            advancing = 1;
            continue;
        }
        /* Exhausted this depth: backtrack. */
        --depth;
        if (depth < 0) {
            result = 0;
            goto done;
        }
        used[image_words[depth]] ^= (uint64_t)1 << image_bits[depth];
        advancing = 0;
    }

done:
    if (words != stack_words)
        free(words);
    if (meta != stack_meta)
        free(meta);
    return result;
}

#ifdef CKERNEL_PYMODULE
/* Minimal module object so setuptools can build this file as an importable
 * extension (`repro.isomorphism._ckernel`).  The kernel is still driven
 * through ctypes against the shared object's exported symbols — the module
 * body exists only to make the build artifact a valid import target and to
 * advertise where the symbols live. */
#define PY_SSIZE_T_CLEAN
#include <Python.h>

static struct PyModuleDef ck_module = {
    PyModuleDef_HEAD_INIT,
    "_ckernel",
    "Native VF2 inner loop (symbols consumed via ctypes; see _ckernel_loader).",
    -1,
    NULL,
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    PyObject *module = PyModule_Create(&ck_module);
    if (module == NULL)
        return NULL;
    if (PyModule_AddIntConstant(module, "ABI_VERSION", CK_ABI_VERSION) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
#endif  /* CKERNEL_PYMODULE */
