"""VF2-style subgraph isomorphism (monomorphism) matcher.

The paper's Definition 2 asks for an *injection* from the query graph's
vertices into a dataset graph's vertices such that every query edge maps onto
an edge of the dataset graph and vertex labels are preserved.  This is the
non-induced variant (subgraph monomorphism) that VF2 [Cordella et al., 2004]
computes when only pattern edges are required to be present, and is the test
performed during the verification stage of every filter-then-verify method.

The matcher follows the VF2 state-space exploration:

* pattern vertices are matched one at a time following a connectivity-aware
  static order (highest-degree, rarest-label first, then BFS),
* candidate target vertices are drawn from the intersection of the target
  neighbourhoods of already-matched pattern neighbours (falling back to the
  label index when the next pattern vertex touches no matched vertex),
* feasibility checks: label equality, degree bound, adjacency consistency
  with the partial mapping, and a one-step look-ahead on the number of
  unmatched neighbours.

The implementation is deliberately free of third-party dependencies; the test
suite cross-validates it against ``networkx``'s matcher.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator
from itertools import islice

from ..graphs.graph import LabeledGraph

__all__ = [
    "VF2Matcher",
    "is_subgraph_isomorphic",
    "find_subgraph_embedding",
    "count_subgraph_embeddings",
    "are_isomorphic",
]


class VF2Matcher:
    """Search for embeddings of ``pattern`` inside ``target``.

    Parameters
    ----------
    pattern:
        The (small) query graph.
    target:
        The (larger) dataset graph.
    induced:
        When ``True``, also require that non-edges of the pattern map to
        non-edges of the target (induced subgraph isomorphism).  The paper's
        experiments only need the default non-induced semantics.
    """

    def __init__(
        self,
        pattern: LabeledGraph,
        target: LabeledGraph,
        induced: bool = False,
    ) -> None:
        self.pattern = pattern
        self.target = target
        self.induced = induced
        self._order = self._matching_order()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def has_match(self) -> bool:
        """True if at least one embedding exists."""
        return self.find_one() is not None

    def find_one(self) -> dict[Hashable, Hashable] | None:
        """Return one embedding (pattern vertex -> target vertex) or ``None``."""
        for mapping in self.iter_matches(limit=1):
            return mapping
        return None

    def count_matches(self, limit: int | None = None) -> int:
        """Count embeddings, optionally stopping after ``limit`` of them."""
        count = 0
        for _ in self.iter_matches(limit=limit):
            count += 1
        return count

    def iter_matches(self, limit: int | None = None) -> Iterator[dict[Hashable, Hashable]]:
        """Yield embeddings as dictionaries mapping pattern to target vertices."""
        matches = self._iter_all_matches()
        if limit is None:
            yield from matches
        else:
            yield from islice(matches, max(limit, 0))

    def _iter_all_matches(self) -> Iterator[dict[Hashable, Hashable]]:
        if self.pattern.num_vertices == 0:
            yield {}
            return
        if self.pattern.num_vertices > self.target.num_vertices:
            return
        if self.pattern.num_edges > self.target.num_edges:
            return
        if not self._labels_compatible():
            return
        yield from self._search({}, set(), 0)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _labels_compatible(self) -> bool:
        """Quick rejection: every pattern label must be frequent enough."""
        target_hist = self.target.label_histogram()
        for label, count in self.pattern.label_histogram().items():
            if target_hist.get(label, 0) < count:
                return False
        return True

    def _matching_order(self) -> list[Hashable]:
        """Static matching order: rare labels and high degrees first, then
        grow the order so that each vertex (when possible) is adjacent to an
        already-ordered vertex, preferring the most-connected frontier vertex."""
        pattern = self.pattern
        if pattern.num_vertices == 0:
            return []
        target_hist = self.target.label_histogram()
        rarity = {
            vertex: (
                target_hist.get(pattern.label(vertex), 0),
                -pattern.degree(vertex),
                repr(vertex),
            )
            for vertex in pattern.vertices()
        }

        order: list[Hashable] = []
        placed: set = set()
        remaining = set(pattern.vertices())
        #: number of already-placed neighbours, maintained incrementally
        placed_neighbors = {vertex: 0 for vertex in remaining}

        def place(vertex: Hashable) -> None:
            order.append(vertex)
            placed.add(vertex)
            remaining.discard(vertex)
            for neighbor in pattern.neighbors(vertex):
                if neighbor not in placed:
                    placed_neighbors[neighbor] += 1

        while remaining:
            # Start (or restart, for disconnected patterns) at the most
            # constrained vertex.
            start = min(remaining, key=rarity.__getitem__)
            place(start)
            frontier = {
                neighbor
                for neighbor in pattern.neighbors(start)
                if neighbor not in placed
            }
            while frontier:
                nxt = min(
                    frontier,
                    key=lambda v: (-placed_neighbors[v],) + rarity[v],
                )
                place(nxt)
                frontier.discard(nxt)
                frontier.update(
                    neighbor
                    for neighbor in pattern.neighbors(nxt)
                    if neighbor not in placed
                )
        return order

    def _candidates(
        self, vertex: Hashable, mapping: dict[Hashable, Hashable], used: set
    ) -> list[Hashable]:
        """Candidate target vertices for the next pattern ``vertex``."""
        pattern, target = self.pattern, self.target
        label = pattern.label(vertex)
        mapped_neighbors = [n for n in pattern.neighbors(vertex) if n in mapping]
        if mapped_neighbors:
            # Intersect the target neighbourhoods of the images of the mapped
            # pattern neighbours: any valid image must be adjacent to all.
            anchor = min(
                mapped_neighbors, key=lambda n: target.degree(mapping[n])
            )
            candidates = [
                candidate
                for candidate in target.neighbors(mapping[anchor])
                if candidate not in used and target.label(candidate) == label
            ]
        else:
            candidates = [
                candidate
                for candidate in target.vertices_with_label(label)
                if candidate not in used
            ]
        return candidates

    def _feasible(
        self, vertex: Hashable, candidate: Hashable, mapping: dict[Hashable, Hashable]
    ) -> bool:
        pattern, target = self.pattern, self.target
        if pattern.degree(vertex) > target.degree(candidate):
            return False
        unmapped_pattern_neighbors = 0
        for neighbor in pattern.neighbors(vertex):
            if neighbor in mapping:
                if not target.has_edge(candidate, mapping[neighbor]):
                    return False
            else:
                unmapped_pattern_neighbors += 1
        if self.induced:
            mapped_images = set(mapping.values())
            for image in target.neighbors(candidate):
                if image in mapped_images:
                    # Find the pattern vertex mapped to this image.
                    for p_vertex, t_vertex in mapping.items():
                        if t_vertex == image and not pattern.has_edge(vertex, p_vertex):
                            return False
        # One-step look-ahead: the candidate must have enough unmatched
        # neighbours left to host the unmatched pattern neighbours.
        unmapped_target_neighbors = sum(
            1 for image in target.neighbors(candidate) if image not in mapping.values()
        )
        return unmapped_target_neighbors >= unmapped_pattern_neighbors

    def _search(
        self,
        mapping: dict[Hashable, Hashable],
        used: set,
        depth: int,
    ) -> Iterator[dict[Hashable, Hashable]]:
        if depth == len(self._order):
            yield dict(mapping)
            return
        vertex = self._order[depth]
        for candidate in self._candidates(vertex, mapping, used):
            if not self._feasible(vertex, candidate, mapping):
                continue
            mapping[vertex] = candidate
            used.add(candidate)
            yield from self._search(mapping, used, depth + 1)
            del mapping[vertex]
            used.discard(candidate)


def is_subgraph_isomorphic(
    pattern: LabeledGraph, target: LabeledGraph, induced: bool = False
) -> bool:
    """True if ``pattern`` is subgraph-isomorphic to ``target`` (g ⊆ G)."""
    return VF2Matcher(pattern, target, induced=induced).has_match()


def find_subgraph_embedding(
    pattern: LabeledGraph, target: LabeledGraph, induced: bool = False
) -> dict[Hashable, Hashable] | None:
    """Return one embedding of ``pattern`` in ``target``, or ``None``."""
    return VF2Matcher(pattern, target, induced=induced).find_one()


def count_subgraph_embeddings(
    pattern: LabeledGraph,
    target: LabeledGraph,
    limit: int | None = None,
    induced: bool = False,
) -> int:
    """Count embeddings of ``pattern`` in ``target`` (up to ``limit``)."""
    return VF2Matcher(pattern, target, induced=induced).count_matches(limit=limit)


def are_isomorphic(first: LabeledGraph, second: LabeledGraph) -> bool:
    """Exact graph isomorphism between two labeled graphs.

    Two graphs with equal vertex and edge counts are isomorphic exactly when
    one is subgraph-isomorphic to the other (the injection is then a
    bijection and, with equal edge counts, edge-surjective as well).  This is
    the §4.3 "same query submitted again" check.
    """
    if first.num_vertices != second.num_vertices or first.num_edges != second.num_edges:
        return False
    if first.invariant_signature() != second.invariant_signature():
        return False
    return is_subgraph_isomorphic(first, second)
