"""Subgraph isomorphism algorithms, cost model and instrumented verifier."""

from .cost import (
    falling_factorial,
    graph_pair_cost,
    isomorphism_test_cost,
    log_isomorphism_test_cost,
)
from .ullmann import UllmannMatcher, ullmann_is_subgraph_isomorphic
from .verifier import Verifier, VerifierStats
from .vf2 import (
    VF2Matcher,
    are_isomorphic,
    count_subgraph_embeddings,
    find_subgraph_embedding,
    is_subgraph_isomorphic,
)

__all__ = [
    "VF2Matcher",
    "UllmannMatcher",
    "Verifier",
    "VerifierStats",
    "are_isomorphic",
    "count_subgraph_embeddings",
    "find_subgraph_embedding",
    "is_subgraph_isomorphic",
    "ullmann_is_subgraph_isomorphic",
    "falling_factorial",
    "graph_pair_cost",
    "isomorphism_test_cost",
    "log_isomorphism_test_cost",
]
