"""Subgraph isomorphism algorithms, cost model and instrumented verifier."""

from .compiled import (
    KERNELS,
    CompiledQueryPlan,
    CompiledTarget,
    DatasetSignatures,
    compile_query_plan,
    compile_target,
    compiled_has_embedding,
    masked_components,
    masked_edge_count,
    native_kernel_available,
    numpy_kernel_available,
    resolve_kernel,
    signature_prereject,
)
from .cost import (
    falling_factorial,
    graph_pair_cost,
    isomorphism_test_cost,
    log_isomorphism_test_cost,
)
from .ullmann import UllmannMatcher, ullmann_is_subgraph_isomorphic
from .verifier import Verifier, VerifierStats
from .vf2 import (
    VF2Matcher,
    are_isomorphic,
    count_subgraph_embeddings,
    find_subgraph_embedding,
    is_subgraph_isomorphic,
)

__all__ = [
    "KERNELS",
    "CompiledQueryPlan",
    "CompiledTarget",
    "DatasetSignatures",
    "compile_query_plan",
    "compile_target",
    "compiled_has_embedding",
    "masked_components",
    "masked_edge_count",
    "native_kernel_available",
    "numpy_kernel_available",
    "resolve_kernel",
    "signature_prereject",
    "VF2Matcher",
    "UllmannMatcher",
    "Verifier",
    "VerifierStats",
    "are_isomorphic",
    "count_subgraph_embeddings",
    "find_subgraph_embedding",
    "is_subgraph_isomorphic",
    "ullmann_is_subgraph_isomorphic",
    "falling_factorial",
    "graph_pair_cost",
    "isomorphism_test_cost",
    "log_isomorphism_test_cost",
]
