"""Verification engine: instrumented wrapper around the matching algorithms.

Every filter-then-verify method performs its verification stage through a
:class:`Verifier`.  The wrapper serves three purposes:

* algorithm selection — VF2 (default, as in the paper's three base methods)
  or Ullmann (baseline for the verifier ablation benchmark);
* fast-path dispatch — when the configured algorithm admits it (VF2,
  non-induced), callers holding precompiled representations
  (:mod:`repro.isomorphism.compiled`) verify through the bitset kernel via
  :meth:`Verifier.is_subgraph_compiled`; the graph-based entry points keep
  working unchanged and apply the same early-fail signature pre-check;
* instrumentation — the number of subgraph isomorphism tests and the time
  spent in them is the primary metric of the paper's evaluation (Figures 1,
  7–11), so the verifier counts every call and accumulates wall-clock time.
  A test resolved by the pre-check or the compiled kernel is still one test:
  the counters only depend on how many candidate pairs were checked, never
  on which internal path checked them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..graphs.graph import LabeledGraph
from .compiled import (
    KERNELS,
    CompiledQueryPlan,
    CompiledTarget,
    compile_query_plan,
    compile_target,
    compiled_has_embedding,
    numpy_kernel_available,
    signature_prereject,
)
from .ullmann import UllmannMatcher
from .vf2 import VF2Matcher

__all__ = ["VerifierStats", "Verifier"]

_ALGORITHMS = ("vf2", "ullmann")


@dataclass
class VerifierStats:
    """Counters accumulated by a :class:`Verifier`."""

    tests: int = 0
    positives: int = 0
    negatives: int = 0
    total_seconds: float = 0.0
    per_test_seconds: list[float] = field(default_factory=list)

    def reset(self) -> None:
        """Zero all counters."""
        self.tests = 0
        self.positives = 0
        self.negatives = 0
        self.total_seconds = 0.0
        self.per_test_seconds.clear()


class Verifier:
    """Run (and count) subgraph isomorphism tests.

    Parameters
    ----------
    algorithm:
        ``"vf2"`` (default) or ``"ullmann"``.
    induced:
        Use induced-subgraph semantics (not needed by the paper's setup).
    compiled:
        Allow the compiled bitset kernel when callers provide precompiled
        representations (default).  ``False`` restores the pure dict-based
        matcher on every path — the benchmark baseline.
    precheck:
        Apply the label-histogram / degree-signature early-fail check before
        running a matcher on the graph-based path (default).  The check is a
        necessary condition for a match, so answers never change; ``False``
        reproduces the pre-optimisation behaviour exactly.
    kernel:
        Compiled-kernel backend: ``"bigint"`` (pure-Python bitmask loop),
        ``"numpy"`` (vectorised uint64 word arrays, bigint fallback when
        numpy is unavailable) or ``"auto"`` (default; per-target cost
        model).  Both backends explore the identical search tree, so
        answers and accounting never depend on the choice.
    """

    def __init__(
        self,
        algorithm: str = "vf2",
        induced: bool = False,
        compiled: bool = True,
        precheck: bool = True,
        kernel: str = "auto",
    ) -> None:
        if algorithm not in _ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; expected one of {_ALGORITHMS}"
            )
        if kernel not in KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
        self.algorithm = algorithm
        self.induced = induced
        self.compiled = compiled
        self.precheck = precheck
        self.kernel = kernel
        self.stats = VerifierStats()

    # ------------------------------------------------------------------
    # Compiled fast path
    # ------------------------------------------------------------------
    def supports_compiled(self) -> bool:
        """True if this verifier may dispatch to the compiled kernel."""
        return self.compiled and self.algorithm == "vf2" and not self.induced

    def compile_pattern(self, pattern: LabeledGraph) -> CompiledQueryPlan | None:
        """Compile ``pattern`` into a reusable plan, or ``None`` when the
        configured algorithm requires the graph-based path."""
        if not self.supports_compiled():
            return None
        return compile_query_plan(pattern)

    def compile_target(self, target: LabeledGraph) -> CompiledTarget | None:
        """Compile ``target`` for repeated verification, or ``None`` when the
        configured algorithm requires the graph-based path."""
        if not self.supports_compiled():
            return None
        return compile_target(target)

    def batched_prereject_enabled(self) -> bool:
        """True if callers should run the vectorised batched pre-reject.

        The batched pass computes exactly the scalar per-pair signature
        check, so it is sound under any configuration; it is skipped for
        ``kernel="bigint"`` (the pure-Python A/B baseline must not touch
        numpy) and when numpy is unavailable.
        """
        return self.kernel != "bigint" and numpy_kernel_available()

    def is_subgraph_compiled(
        self,
        plan: CompiledQueryPlan,
        target: CompiledTarget,
        vertex_mask: int | None = None,
        prerejected: bool | None = None,
    ) -> bool:
        """Test ``plan.pattern ⊆ target.graph`` through the bitset kernel.

        Counts and times exactly like :meth:`is_subgraph`; callers obtain
        ``plan`` and ``target`` from :meth:`compile_pattern` /
        :meth:`compile_target` or from the database caches.  A ``vertex_mask``
        restricts the embedding's image to the masked target vertices
        (region-restricted verification); a masked run is still one counted
        test, exactly like the region-subgraph test it replaces.

        ``prerejected`` carries the pair's verdict from a batched
        :class:`~repro.isomorphism.compiled.DatasetSignatures` pass:
        ``True`` records the (certain) negative without entering the
        kernel, ``False`` enters the kernel with the scalar pre-check
        skipped, ``None`` (default) runs the scalar pre-check inside the
        kernel.  Either way the pair is one counted test — batching moves
        work around but never changes how much verification is accounted.
        """
        start = time.perf_counter()
        if prerejected:
            result = False
        else:
            result = compiled_has_embedding(
                plan,
                target,
                vertex_mask,
                kernel=self.kernel,
                prechecked=prerejected is not None,
            )
        self._record(result, time.perf_counter() - start)
        return result

    # ------------------------------------------------------------------
    # Graph-based path
    # ------------------------------------------------------------------
    def is_subgraph(self, pattern: LabeledGraph, target: LabeledGraph) -> bool:
        """Test ``pattern ⊆ target``, updating the statistics."""
        start = time.perf_counter()
        if self.precheck and signature_prereject(pattern, target):
            # The signature check is a necessary condition for any (induced
            # or non-induced) subgraph isomorphism: a reject here is a test
            # whose matcher run is provably pointless.
            result = False
        elif self.algorithm == "vf2":
            result = VF2Matcher(pattern, target, induced=self.induced).has_match()
        else:
            result = UllmannMatcher(pattern, target).has_match()
        self._record(result, time.perf_counter() - start)
        return result

    def is_supergraph(self, pattern: LabeledGraph, target: LabeledGraph) -> bool:
        """Test ``pattern ⊇ target`` (i.e. ``target ⊆ pattern``)."""
        return self.is_subgraph(target, pattern)

    # ------------------------------------------------------------------
    def _record(self, result: bool, elapsed: float) -> None:
        self.stats.tests += 1
        self.stats.total_seconds += elapsed
        self.stats.per_test_seconds.append(elapsed)
        if result:
            self.stats.positives += 1
        else:
            self.stats.negatives += 1

    def reset(self) -> None:
        """Reset the accumulated statistics."""
        self.stats.reset()

    def fresh_clone(self) -> "Verifier":
        """A new verifier with the same configuration and zeroed statistics.

        Worker-side verification (process snapshots, per-chunk thread
        clones) must run under the *same* algorithm and fast-path flags as
        the parent — otherwise an A/B run with ``compiled=False`` would
        silently re-enable the fast path on the pool — but must not inherit
        the parent's accumulated counters.
        """
        return Verifier(
            algorithm=self.algorithm,
            induced=self.induced,
            compiled=self.compiled,
            precheck=self.precheck,
            kernel=self.kernel,
        )
