"""Verification engine: instrumented wrapper around the matching algorithms.

Every filter-then-verify method performs its verification stage through a
:class:`Verifier`.  The wrapper serves three purposes:

* algorithm selection — VF2 (default, as in the paper's three base methods)
  or Ullmann (baseline for the verifier ablation benchmark);
* fast-path dispatch — when the configured algorithm admits it (VF2,
  non-induced), callers holding precompiled representations
  (:mod:`repro.isomorphism.compiled`) verify through the bitset kernel via
  :meth:`Verifier.is_subgraph_compiled`; the graph-based entry points keep
  working unchanged and apply the same early-fail signature pre-check;
* instrumentation — the number of subgraph isomorphism tests and the time
  spent in them is the primary metric of the paper's evaluation (Figures 1,
  7–11), so the verifier counts every call and accumulates wall-clock time.
  A test resolved by the pre-check or the compiled kernel is still one test:
  the counters only depend on how many candidate pairs were checked, never
  on which internal path checked them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..graphs.graph import LabeledGraph
from .compiled import (
    KERNELS,
    CompiledQueryPlan,
    CompiledTarget,
    compile_query_plan,
    compile_target,
    compiled_has_embedding,
    numpy_kernel_available,
    resolve_kernel,
    signature_prereject,
)
from .ullmann import UllmannMatcher
from .vf2 import VF2Matcher

__all__ = ["VerifierStats", "Verifier"]

_ALGORITHMS = ("vf2", "ullmann")

#: entries kept by the per-verifier compile memos (queries in flight at any
#: moment are few; the memo only needs to cover a working set of repeats)
_COMPILE_MEMO_CAPACITY = 64


@dataclass
class VerifierStats:
    """Counters accumulated by a :class:`Verifier`."""

    tests: int = 0
    positives: int = 0
    negatives: int = 0
    total_seconds: float = 0.0
    per_test_seconds: list[float] = field(default_factory=list)

    def reset(self) -> None:
        """Zero all counters."""
        self.tests = 0
        self.positives = 0
        self.negatives = 0
        self.total_seconds = 0.0
        self.per_test_seconds.clear()


class Verifier:
    """Run (and count) subgraph isomorphism tests.

    Parameters
    ----------
    algorithm:
        ``"vf2"`` (default) or ``"ullmann"``.
    induced:
        Use induced-subgraph semantics (not needed by the paper's setup).
    compiled:
        Allow the compiled bitset kernel when callers provide precompiled
        representations (default).  ``False`` restores the pure dict-based
        matcher on every path — the benchmark baseline.
    precheck:
        Apply the label-histogram / degree-signature early-fail check before
        running a matcher on the graph-based path (default).  The check is a
        necessary condition for a match, so answers never change; ``False``
        reproduces the pre-optimisation behaviour exactly.
    kernel:
        Compiled-kernel backend: ``"bigint"`` (pure-Python bitmask loop),
        ``"numpy"`` (vectorised uint64 word arrays, bigint fallback when
        numpy is unavailable), ``"native"`` (hand-written C inner loop,
        bigint fallback when the shared library cannot be loaded) or
        ``"auto"`` (default; native when loadable, else per-target cost
        model).  All backends explore the identical search tree, so
        answers and accounting never depend on the choice.
    """

    def __init__(
        self,
        algorithm: str = "vf2",
        induced: bool = False,
        compiled: bool = True,
        precheck: bool = True,
        kernel: str = "auto",
    ) -> None:
        if algorithm not in _ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; expected one of {_ALGORITHMS}"
            )
        if kernel not in KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
        self.algorithm = algorithm
        self.induced = induced
        self.compiled = compiled
        self.precheck = precheck
        self.kernel = kernel
        self.stats = VerifierStats()
        #: what the *parent* process resolved ``kernel`` to, stamped onto
        #: worker-bound verifier clones by ``verification_snapshot`` (the
        #: worker still re-resolves locally — the native library present in
        #: the parent may be unloadable in a fresh process; comparing the
        #: two names is how a silent fallback is detected)
        self.parent_resolved_kernel: str | None = None
        # id(graph) -> (graph, num_vertices, num_edges, compiled) memos for
        # compile_pattern / compile_target: workload streams repeat queries
        # (Zipf by design), and the compiled forms depend only on the graph.
        # Entries hold a strong reference to their graph, so a live entry's
        # id can never be reused by a new object; the count guard catches
        # in-place growth (add_vertex / add_edge are the only mutators and
        # both strictly increase a count).
        self._plan_memo: dict[int, tuple] = {}
        self._target_memo: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # Compiled fast path
    # ------------------------------------------------------------------
    def supports_compiled(self) -> bool:
        """True if this verifier may dispatch to the compiled kernel."""
        return self.compiled and self.algorithm == "vf2" and not self.induced

    @staticmethod
    def _memoised(memo: dict, graph: LabeledGraph, compile_fn):
        entry = memo.get(id(graph))
        if (
            entry is not None
            and entry[1] == graph.num_vertices
            and entry[2] == graph.num_edges
        ):
            return entry[3]
        compiled = compile_fn(graph)
        if len(memo) >= _COMPILE_MEMO_CAPACITY:
            memo.pop(next(iter(memo)))
        memo[id(graph)] = (graph, graph.num_vertices, graph.num_edges, compiled)
        return compiled

    def compile_pattern(self, pattern: LabeledGraph) -> CompiledQueryPlan | None:
        """Compile ``pattern`` into a reusable plan, or ``None`` when the
        configured algorithm requires the graph-based path.

        Memoised per graph object: a repeated query re-uses its plan
        instead of recomputing the matching order (plans are immutable and
        deterministic, so sharing never changes answers or accounting).
        """
        if not self.supports_compiled():
            return None
        return self._memoised(self._plan_memo, pattern, compile_query_plan)

    def compile_target(self, target: LabeledGraph) -> CompiledTarget | None:
        """Compile ``target`` for repeated verification, or ``None`` when the
        configured algorithm requires the graph-based path.

        Memoised like :meth:`compile_pattern` (supergraph streams repeat
        query graphs in the target role the same way).
        """
        if not self.supports_compiled():
            return None
        return self._memoised(self._target_memo, target, compile_target)

    def batched_prereject_enabled(self) -> bool:
        """True if callers should run the vectorised batched pre-reject.

        The batched pass computes exactly the scalar per-pair signature
        check, so it is sound under any configuration; it is skipped for
        ``kernel="bigint"`` (the pure-Python A/B baseline must not touch
        numpy) and when numpy is unavailable.
        """
        return self.kernel != "bigint" and numpy_kernel_available()

    def resolved_kernel_name(self) -> str:
        """The kernel backend this verifier runs *in this process*.

        ``"uncompiled"`` when the configuration bypasses the compiled
        kernel entirely; otherwise the target-independent
        :func:`resolve_kernel` answer for the configured ``kernel``.
        Resolution is per process — a worker whose native library failed to
        load reports ``"bigint"`` here while its parent reports
        ``"native"`` — and the ``kernel_resolved`` block of the service
        report folds these names back from every worker precisely so that
        such a silent fallback is visible.
        """
        if not self.supports_compiled():
            return "uncompiled"
        return resolve_kernel(self.kernel)

    def is_subgraph_compiled(
        self,
        plan: CompiledQueryPlan,
        target: CompiledTarget,
        vertex_mask: int | None = None,
        prerejected: bool | None = None,
    ) -> bool:
        """Test ``plan.pattern ⊆ target.graph`` through the bitset kernel.

        Counts and times exactly like :meth:`is_subgraph`; callers obtain
        ``plan`` and ``target`` from :meth:`compile_pattern` /
        :meth:`compile_target` or from the database caches.  A ``vertex_mask``
        restricts the embedding's image to the masked target vertices
        (region-restricted verification); a masked run is still one counted
        test, exactly like the region-subgraph test it replaces.

        ``prerejected`` carries the pair's verdict from a batched
        :class:`~repro.isomorphism.compiled.DatasetSignatures` pass:
        ``True`` records the (certain) negative without entering the
        kernel, ``False`` enters the kernel with the scalar pre-check
        skipped, ``None`` (default) runs the scalar pre-check inside the
        kernel.  Either way the pair is one counted test — batching moves
        work around but never changes how much verification is accounted.
        """
        start = time.perf_counter()
        if prerejected:
            result = False
        else:
            result = compiled_has_embedding(
                plan,
                target,
                vertex_mask,
                kernel=self.kernel,
                prechecked=prerejected is not None,
            )
        self._record(result, time.perf_counter() - start)
        return result

    # ------------------------------------------------------------------
    # Graph-based path
    # ------------------------------------------------------------------
    def is_subgraph(self, pattern: LabeledGraph, target: LabeledGraph) -> bool:
        """Test ``pattern ⊆ target``, updating the statistics."""
        start = time.perf_counter()
        if self.precheck and signature_prereject(pattern, target):
            # The signature check is a necessary condition for any (induced
            # or non-induced) subgraph isomorphism: a reject here is a test
            # whose matcher run is provably pointless.
            result = False
        elif self.algorithm == "vf2":
            result = VF2Matcher(pattern, target, induced=self.induced).has_match()
        else:
            result = UllmannMatcher(pattern, target).has_match()
        self._record(result, time.perf_counter() - start)
        return result

    def is_supergraph(self, pattern: LabeledGraph, target: LabeledGraph) -> bool:
        """Test ``pattern ⊇ target`` (i.e. ``target ⊆ pattern``)."""
        return self.is_subgraph(target, pattern)

    # ------------------------------------------------------------------
    def _record(self, result: bool, elapsed: float) -> None:
        self.stats.tests += 1
        self.stats.total_seconds += elapsed
        self.stats.per_test_seconds.append(elapsed)
        if result:
            self.stats.positives += 1
        else:
            self.stats.negatives += 1

    def reset(self) -> None:
        """Reset the accumulated statistics."""
        self.stats.reset()

    def fresh_clone(self) -> "Verifier":
        """A new verifier with the same configuration and zeroed statistics.

        Worker-side verification (process snapshots, per-chunk thread
        clones) must run under the *same* algorithm and fast-path flags as
        the parent — otherwise an A/B run with ``compiled=False`` would
        silently re-enable the fast path on the pool — but must not inherit
        the parent's accumulated counters.
        """
        return Verifier(
            algorithm=self.algorithm,
            induced=self.induced,
            compiled=self.compiled,
            precheck=self.precheck,
            kernel=self.kernel,
        )
