"""Verification engine: instrumented wrapper around the matching algorithms.

Every filter-then-verify method performs its verification stage through a
:class:`Verifier`.  The wrapper serves two purposes:

* algorithm selection — VF2 (default, as in the paper's three base methods)
  or Ullmann (baseline for the verifier ablation benchmark);
* instrumentation — the number of subgraph isomorphism tests and the time
  spent in them is the primary metric of the paper's evaluation (Figures 1,
  7–11), so the verifier counts every call and accumulates wall-clock time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..graphs.graph import LabeledGraph
from .ullmann import UllmannMatcher
from .vf2 import VF2Matcher

__all__ = ["VerifierStats", "Verifier"]

_ALGORITHMS = ("vf2", "ullmann")


@dataclass
class VerifierStats:
    """Counters accumulated by a :class:`Verifier`."""

    tests: int = 0
    positives: int = 0
    negatives: int = 0
    total_seconds: float = 0.0
    per_test_seconds: list[float] = field(default_factory=list)

    def reset(self) -> None:
        """Zero all counters."""
        self.tests = 0
        self.positives = 0
        self.negatives = 0
        self.total_seconds = 0.0
        self.per_test_seconds.clear()


class Verifier:
    """Run (and count) subgraph isomorphism tests.

    Parameters
    ----------
    algorithm:
        ``"vf2"`` (default) or ``"ullmann"``.
    induced:
        Use induced-subgraph semantics (not needed by the paper's setup).
    """

    def __init__(self, algorithm: str = "vf2", induced: bool = False) -> None:
        if algorithm not in _ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; expected one of {_ALGORITHMS}"
            )
        self.algorithm = algorithm
        self.induced = induced
        self.stats = VerifierStats()

    def is_subgraph(self, pattern: LabeledGraph, target: LabeledGraph) -> bool:
        """Test ``pattern ⊆ target``, updating the statistics."""
        start = time.perf_counter()
        if self.algorithm == "vf2":
            result = VF2Matcher(pattern, target, induced=self.induced).has_match()
        else:
            result = UllmannMatcher(pattern, target).has_match()
        elapsed = time.perf_counter() - start
        self.stats.tests += 1
        self.stats.total_seconds += elapsed
        self.stats.per_test_seconds.append(elapsed)
        if result:
            self.stats.positives += 1
        else:
            self.stats.negatives += 1
        return result

    def is_supergraph(self, pattern: LabeledGraph, target: LabeledGraph) -> bool:
        """Test ``pattern ⊇ target`` (i.e. ``target ⊆ pattern``)."""
        return self.is_subgraph(target, pattern)

    def reset(self) -> None:
        """Reset the accumulated statistics."""
        self.stats.reset()
