"""Ullmann's subgraph isomorphism algorithm (baseline verifier).

Ullmann [1976] is the classic backtracking algorithm the paper cites as the
ancestor of most practical matchers.  It maintains a candidate matrix
``M[i][j] = 1`` when pattern vertex *i* may still be mapped onto target
vertex *j*, and interleaves backtracking over rows with a *refinement*
procedure: a candidate pair ``(i, j)`` survives only if every neighbour of
*i* still has at least one candidate among the neighbours of *j*.

It is included both as an alternative verification engine and as the
baseline for the ``bench_ablation_verifier`` benchmark (VF2 vs Ullmann).
The semantics match :mod:`repro.isomorphism.vf2`: non-induced subgraph
monomorphism with vertex-label equality.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator

from ..graphs.graph import LabeledGraph

__all__ = ["UllmannMatcher", "ullmann_is_subgraph_isomorphic"]


class UllmannMatcher:
    """Ullmann matcher for embeddings of ``pattern`` inside ``target``."""

    def __init__(self, pattern: LabeledGraph, target: LabeledGraph) -> None:
        self.pattern = pattern
        self.target = target
        self._pattern_vertices = list(pattern.vertices())
        self._target_vertices = list(target.vertices())
        self._target_position = {
            vertex: position for position, vertex in enumerate(self._target_vertices)
        }

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def has_match(self) -> bool:
        """True if at least one embedding exists."""
        return self.find_one() is not None

    def find_one(self) -> dict[Hashable, Hashable] | None:
        """Return one embedding (pattern vertex -> target vertex) or ``None``."""
        for mapping in self.iter_matches():
            return mapping
        return None

    def iter_matches(self) -> Iterator[dict[Hashable, Hashable]]:
        """Yield embeddings one at a time."""
        if self.pattern.num_vertices == 0:
            yield {}
            return
        if self.pattern.num_vertices > self.target.num_vertices:
            return
        if self.pattern.num_edges > self.target.num_edges:
            return
        candidates = self._initial_candidates()
        if candidates is None:
            return
        yield from self._backtrack(0, candidates, {})

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _initial_candidates(self) -> list[set[int]] | None:
        """Build the initial candidate sets (row i = pattern vertex i)."""
        rows: list[set[int]] = []
        for p_vertex in self._pattern_vertices:
            label = self.pattern.label(p_vertex)
            degree = self.pattern.degree(p_vertex)
            row = {
                self._target_position[t_vertex]
                for t_vertex in self.target.vertices_with_label(label)
                if self.target.degree(t_vertex) >= degree
            }
            if not row:
                return None
            rows.append(row)
        return rows

    def _refine(self, candidates: list[set[int]]) -> bool:
        """Ullmann refinement; returns False if any row becomes empty."""
        changed = True
        while changed:
            changed = False
            for i, p_vertex in enumerate(self._pattern_vertices):
                pattern_neighbors = [
                    self._pattern_vertices.index(n)
                    for n in self.pattern.neighbors(p_vertex)
                ]
                for j in list(candidates[i]):
                    t_vertex = self._target_vertices[j]
                    target_neighbor_positions = {
                        self._target_position[n] for n in self.target.neighbors(t_vertex)
                    }
                    for neighbor_row in pattern_neighbors:
                        if not candidates[neighbor_row] & target_neighbor_positions:
                            candidates[i].discard(j)
                            changed = True
                            break
                if not candidates[i]:
                    return False
        return True

    def _backtrack(
        self,
        row: int,
        candidates: list[set[int]],
        mapping: dict[int, int],
    ) -> Iterator[dict[Hashable, Hashable]]:
        if row == len(self._pattern_vertices):
            yield {
                self._pattern_vertices[i]: self._target_vertices[j]
                for i, j in mapping.items()
            }
            return
        used = set(mapping.values())
        p_vertex = self._pattern_vertices[row]
        for j in sorted(candidates[row]):
            if j in used:
                continue
            t_vertex = self._target_vertices[j]
            if not self._consistent(p_vertex, t_vertex, mapping):
                continue
            narrowed = [set(r) for r in candidates]
            narrowed[row] = {j}
            if not self._refine(narrowed):
                continue
            mapping[row] = j
            yield from self._backtrack(row + 1, narrowed, mapping)
            del mapping[row]

    def _consistent(
        self, p_vertex: Hashable, t_vertex: Hashable, mapping: dict[int, int]
    ) -> bool:
        """Check adjacency of the candidate pair against the partial map."""
        for i, j in mapping.items():
            mapped_p = self._pattern_vertices[i]
            mapped_t = self._target_vertices[j]
            if self.pattern.has_edge(p_vertex, mapped_p) and not self.target.has_edge(
                t_vertex, mapped_t
            ):
                return False
        return True


def ullmann_is_subgraph_isomorphic(pattern: LabeledGraph, target: LabeledGraph) -> bool:
    """True if ``pattern`` is subgraph-isomorphic to ``target`` (Ullmann)."""
    return UllmannMatcher(pattern, target).has_match()
