"""Subgraph-isomorphism cost model used by the iGQ replacement policy (§5.1).

The paper extends the asymptotic analysis of Cordella et al. to subgraph
isomorphism: for graphs with ``L`` labels, a query graph ``g'`` with ``n``
nodes and a dataset graph ``G_i`` with ``N_i >= n`` nodes, the estimated cost
of testing ``g' ⊆ G_i`` is

    c(g', G_i) = N_i * N_i! / (L^(n+1) * (N_i - n)!)

The factorial ratio ``N_i!/(N_i - n)!`` is the falling factorial
``N_i * (N_i - 1) * ... * (N_i - n + 1)``.  Because the quantities grow
astronomically for the graph sizes in the PDBS/PPI datasets, the default
entry point works in log-space and returns a ``float`` (possibly ``inf``
only in truly degenerate cases); an exact big-integer variant is provided
for tests and for small graphs.
"""

from __future__ import annotations

import math

from ..graphs.graph import LabeledGraph

__all__ = [
    "falling_factorial",
    "isomorphism_test_cost",
    "log_isomorphism_test_cost",
    "graph_pair_cost",
]


def falling_factorial(n: int, k: int) -> int:
    """Exact falling factorial ``n * (n-1) * ... * (n-k+1)`` (``k >= 0``)."""
    if k < 0:
        raise ValueError("k must be non-negative")
    if k > n:
        return 0
    result = 1
    for value in range(n, n - k, -1):
        result *= value
    return result


def log_isomorphism_test_cost(num_query_nodes: int, num_target_nodes: int, num_labels: int) -> float:
    """Natural logarithm of ``c(g', G_i)``.

    Working in log space keeps the replacement-policy arithmetic well
    behaved for the large, dense graphs of the PPI and synthetic datasets,
    where the raw cost overflows ``float``.
    """
    if num_labels < 1:
        raise ValueError("the label universe must contain at least one label")
    if num_target_nodes < 1:
        raise ValueError("the target graph must have at least one node")
    n = min(num_query_nodes, num_target_nodes)
    log_falling = sum(
        math.log(value) for value in range(num_target_nodes, num_target_nodes - n, -1)
    )
    return (
        math.log(num_target_nodes)
        + log_falling
        - (num_query_nodes + 1) * math.log(num_labels)
    )


def isomorphism_test_cost(
    num_query_nodes: int,
    num_target_nodes: int,
    num_labels: int,
    exact: bool = False,
) -> float:
    """Estimated cost ``c(g', G_i)`` of one subgraph isomorphism test.

    Parameters
    ----------
    num_query_nodes:
        ``n`` — number of nodes of the query graph.
    num_target_nodes:
        ``N_i`` — number of nodes of the candidate dataset graph.
    num_labels:
        ``L`` — size of the label universe.
    exact:
        When ``True``, evaluate the formula with exact integer arithmetic and
        return a float of the true ratio (may overflow to ``inf`` for very
        large graphs); otherwise exponentiate the log-space value, saturating
        at ``float`` infinity.
    """
    if exact:
        numerator = num_target_nodes * falling_factorial(
            num_target_nodes, min(num_query_nodes, num_target_nodes)
        )
        denominator = num_labels ** (num_query_nodes + 1)
        return numerator / denominator
    log_cost = log_isomorphism_test_cost(num_query_nodes, num_target_nodes, num_labels)
    try:
        return math.exp(log_cost)
    except OverflowError:  # pragma: no cover - requires astronomically large graphs
        return math.inf


def graph_pair_cost(query: LabeledGraph, target: LabeledGraph, num_labels: int) -> float:
    """Convenience wrapper computing ``c(query, target)`` from graph objects."""
    return isomorphism_test_cost(query.num_vertices, target.num_vertices, num_labels)
