"""iGQ reproduction: indexing query graphs to speed up graph query processing.

This package reproduces the system described in

    Jing Wang, Nikos Ntarmos, Peter Triantafillou.
    "Indexing Query Graphs to Speedup Graph Query Processing", EDBT 2016.

Public API overview
-------------------

* :mod:`repro.graphs` — the labeled-graph substrate (graphs, databases, I/O).
* :mod:`repro.isomorphism` — VF2 / Ullmann subgraph isomorphism and the
  cost model used by iGQ's replacement policy.
* :mod:`repro.features` — path / tree / cycle feature extraction and the
  feature trie.
* :mod:`repro.methods` — the filter-then-verify base methods: GraphGrepSX,
  Grapes, CT-Index (plus a scan baseline).
* :mod:`repro.core` — iGQ itself: the query cache, the Isub and Isuper
  component indexes, the utility-based replacement policy and the
  :class:`~repro.core.engine.IGQ` engine that wraps any base method.
* :mod:`repro.datasets` / :mod:`repro.workloads` — synthetic stand-ins for
  the paper's datasets and the four query workloads.
* :mod:`repro.experiments` — drivers that regenerate every figure of the
  paper's evaluation.

* :mod:`repro.service` — :class:`~repro.service.GraphQueryService`, the
  session façade that owns engine lifecycle and is the intended public
  entry point for applications; :func:`~repro.service.server.serve` /
  :func:`~repro.service.client.connect` expose and reach it over a
  versioned JSON wire protocol with per-tenant QoS.

Quickstart
----------

>>> from repro import CacheConfig, EngineConfig, GraphQueryService
>>> from repro import create_method, load_dataset, QueryGenerator, WorkloadSpec
>>> database = load_dataset("aids", scale=0.2)
>>> config = EngineConfig(cache=CacheConfig(size=50, window=10))
>>> queries = QueryGenerator(database, WorkloadSpec(name="zipf-zipf",
...     graph_distribution="zipf", node_distribution="zipf")).generate(20)
>>> with GraphQueryService(create_method("ggsx"), config, database=database) as service:
...     results = service.run(queries)
"""

from .core.config import (
    BatchConfig,
    CacheConfig,
    ConfigError,
    EngineConfig,
    PersistConfig,
    ServiceConfig,
    ShardConfig,
    TenantConfig,
    VerifierConfig,
)
from .core.engine import IGQ, IGQQueryResult
from .core.shard import ShardedIGQ
from .datasets.registry import available_datasets, load_dataset
from .graphs.database import GraphDatabase
from .graphs.graph import GraphError, LabeledGraph
from .isomorphism.verifier import Verifier
from .isomorphism.vf2 import is_subgraph_isomorphic
from .methods import available_methods, create_method
from .methods.base import QueryResult, SubgraphQueryMethod
from .service import (
    AdmissionError,
    GraphQueryService,
    QueryTimeout,
    ServiceClosed,
    ServiceReport,
    ServiceSession,
    SessionStats,
)
from .service.client import ServiceClient, connect
from .service.server import ServiceServer, serve
from .workloads.generator import QueryGenerator, WorkloadSpec, standard_workloads

__version__ = "1.0.0"

__all__ = [
    "IGQ",
    "IGQQueryResult",
    "ShardedIGQ",
    "EngineConfig",
    "CacheConfig",
    "VerifierConfig",
    "BatchConfig",
    "ShardConfig",
    "ServiceConfig",
    "TenantConfig",
    "PersistConfig",
    "ConfigError",
    "GraphQueryService",
    "ServiceClosed",
    "QueryTimeout",
    "AdmissionError",
    "ServiceReport",
    "ServiceSession",
    "SessionStats",
    "ServiceServer",
    "ServiceClient",
    "serve",
    "connect",
    "GraphDatabase",
    "GraphError",
    "LabeledGraph",
    "QueryGenerator",
    "QueryResult",
    "SubgraphQueryMethod",
    "Verifier",
    "WorkloadSpec",
    "available_datasets",
    "available_methods",
    "create_method",
    "is_subgraph_isomorphic",
    "load_dataset",
    "standard_workloads",
    "__version__",
]
